#include "lp/revised_simplex.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>

#include "linalg/sparse_lu.h"

namespace dpm::lp {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
constexpr double kInf = std::numeric_limits<double>::infinity();

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Standard-form engine: columns [structural | slack/surplus | artificial]
// over equality rows A x = b, 0 <= x <= u (u = +inf unless the problem
// bounds the variable or a singleton row was absorbed into the bound
// set).  Artificials carry an implicit upper bound of zero outside
// phase 1 and are never allowed to enter.
class RevisedSimplex {
 public:
  RevisedSimplex(const LpProblem& p, const RevisedSimplexOptions& opt)
      : opt_(opt),
        n_struct_(p.num_variables()),
        factor_(opt.refactor_interval, 1e-11, opt.refactor_work_ratio) {
    // --- bound setup + singleton-row absorption ----------------------
    upper_struct_.assign(n_struct_, kInf);
    for (std::size_t j = 0; j < n_struct_; ++j) {
      upper_struct_[j] = p.upper_bounds()[j];
    }
    std::vector<char> keep_row(p.num_constraints(), 1);
    if (opt_.absorb_singleton_rows) {
      for (std::size_t i = 0; i < p.num_constraints(); ++i) {
        if (!absorb_row(p.constraints()[i], keep_row[i])) {
          infeasible_by_bounds_ = true;
          return;
        }
      }
    }

    // --- row remap + structural columns ------------------------------
    std::vector<std::size_t> row_map(p.num_constraints(), kNone);
    for (std::size_t i = 0; i < p.num_constraints(); ++i) {
      if (keep_row[i]) {
        row_map[i] = m_;
        ++m_;
      }
    }
    const linalg::SparseMatrixCsc a = p.constraint_csc();
    cols_.reserve(n_struct_ + 2 * m_);
    for (std::size_t j = 0; j < n_struct_; ++j) {
      linalg::SparseColumn col;
      col.reserve(a.col_end(j) - a.col_begin(j));
      for (std::size_t k = a.col_begin(j); k < a.col_end(j); ++k) {
        const std::size_t i = row_map[a.row_indices()[k]];
        if (i != kNone) col.emplace_back(i, a.values()[k]);
      }
      cols_.push_back(std::move(col));
    }

    // --- logical columns ---------------------------------------------
    rhs_.resize(m_);
    slack_of_row_.assign(m_, kNone);
    for (std::size_t i0 = 0; i0 < p.num_constraints(); ++i0) {
      if (!keep_row[i0]) continue;
      const Constraint& c = p.constraints()[i0];
      const std::size_t i = row_map[i0];
      rhs_[i] = c.rhs;
      if (c.sense != Sense::kEq) {
        slack_of_row_[i] = cols_.size();
        cols_.push_back({{i, c.sense == Sense::kLe ? 1.0 : -1.0}});
      }
    }
    first_artificial_ = cols_.size();
    for (std::size_t i = 0; i < m_; ++i) {
      cols_.push_back({{i, rhs_[i] < 0.0 ? -1.0 : 1.0}});
    }
    n_cols_ = cols_.size();

    upper_.assign(n_cols_, kInf);
    for (std::size_t j = 0; j < n_struct_; ++j) {
      upper_[j] = upper_struct_[j];
      if (std::isfinite(upper_[j])) finite_ub_cols_.push_back(j);
    }
    at_upper_.assign(n_cols_, 0);

    cost2_.assign(n_cols_, 0.0);
    for (std::size_t j = 0; j < n_struct_; ++j) cost2_[j] = p.costs()[j];
    cost1_.assign(n_cols_, 0.0);
    for (std::size_t j = first_artificial_; j < n_cols_; ++j) cost1_[j] = 1.0;
  }

  bool infeasible_by_bounds() const noexcept { return infeasible_by_bounds_; }
  bool is_artificial(std::size_t j) const { return j >= first_artificial_; }

  /// Cold start: slack basis where the slack sign admits it, artificial
  /// elsewhere.  Returns true when any artificial entered the basis
  /// (phase 1 required).
  bool install_cold_basis() {
    basis_.assign(m_, kNone);
    std::fill(at_upper_.begin(), at_upper_.end(), 0);
    bool need_phase1 = false;
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t s = slack_of_row_[i];
      if (s != kNone) {
        const double sigma = cols_[s].front().second;
        if (rhs_[i] / sigma >= 0.0) {
          basis_[i] = s;
          continue;
        }
      }
      basis_[i] = first_artificial_ + i;
      need_phase1 = true;
    }
    rebuild_in_basis();
    return need_phase1;
  }

  bool install_warm_basis(const SimplexBasis& warm) {
    if (warm.basic.size() != m_) return false;
    for (const std::size_t j : warm.basic) {
      if (j >= n_cols_) return false;
    }
    basis_ = warm.basic;
    // Restore nonbasic bound status.  Only columns whose bound is
    // finite *now* may rest at upper — a bound relaxed to +inf since
    // the basis was saved drops its column to the lower bound (the
    // dual-feasibility gate below falls back cold if that breaks
    // optimality conditions).
    std::fill(at_upper_.begin(), at_upper_.end(), 0);
    if (warm.at_upper.size() == n_cols_) {
      for (const std::size_t j : finite_ub_cols_) {
        at_upper_[j] = warm.at_upper[j];
      }
    }
    rebuild_in_basis();
    for (const std::size_t j : basis_) at_upper_[j] = 0;
    return true;
  }

  /// Saves the basis + nonbasic bound flags for a later warm start.
  void save_basis(SimplexBasis* out) const {
    if (out == nullptr) return;
    out->basic = basis_;
    out->at_upper.assign(at_upper_.begin(), at_upper_.end());
  }

  bool refactorize() {
    std::vector<linalg::SparseColumn> bcols(m_);
    for (std::size_t i = 0; i < m_; ++i) bcols[i] = cols_[basis_[i]];
    const double t0 = now_ms();
    const bool ok = factor_.refactorize(m_, bcols);
    if (opt_.stats != nullptr) {
      opt_.stats->refactorizations += 1;
      opt_.stats->refactor_ms += now_ms() - t0;
      if (ok) opt_.stats->factor_nonzeros = factor_.factor_nonzeros();
    }
    return ok;
  }

  // Timed triangular-sweep wrappers: every B^{-1}/B^{-T} application in
  // the solver funnels through these two so SimplexStats can report the
  // update-vs-sweep cost split without instrumenting each call site.
  // `entering = true` marks the ftran of a candidate entering column,
  // whose intermediate result the factorization caches as the spike of
  // the upcoming Forrest-Tomlin update.
  void solve_ftran(linalg::Vector& v, bool entering = false) const {
    if (opt_.stats == nullptr) {
      factor_.ftran(v, entering);
      return;
    }
    const double t0 = now_ms();
    factor_.ftran(v, entering);
    opt_.stats->sweep_ms += now_ms() - t0;
  }

  void solve_btran(linalg::Vector& v) const {
    if (opt_.stats == nullptr) {
      factor_.btran(v);
      return;
    }
    const double t0 = now_ms();
    factor_.btran(v);
    opt_.stats->sweep_ms += now_ms() - t0;
  }

  void recompute_xb() {
    xb_ = rhs_;
    for (const std::size_t j : finite_ub_cols_) {
      if (!at_upper_[j]) continue;
      for (const auto& [r, v] : cols_[j]) xb_[r] -= upper_[j] * v;
    }
    solve_ftran(xb_);
  }

  linalg::Vector duals(const linalg::Vector& cost) const {
    linalg::Vector y(m_);
    for (std::size_t i = 0; i < m_; ++i) y[i] = cost[basis_[i]];
    solve_btran(y);
    return y;
  }

  double column_dot(std::size_t j, const linalg::Vector& y) const {
    double acc = 0.0;
    for (const auto& [r, v] : cols_[j]) acc += v * y[r];
    return acc;
  }

  double primal_infeasibility() const {
    double worst = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      worst = std::max(worst, -xb_[i]);
      const double u = upper_[basis_[i]];
      if (std::isfinite(u)) worst = std::max(worst, xb_[i] - u);
    }
    return worst;
  }

  /// True when any artificial column sits in the basis (a redundant
  /// row's placeholder, legitimate only at value zero).  Warm starts
  /// must refuse such bases: a rhs change can push the artificial
  /// positive — which neither the boxed dual simplex (an artificial's
  /// implicit zero cap is not in upper_, so it sees no violation) nor
  /// phase 2 (it only caps artificial growth) can repair — and the
  /// dual phase's infeasibility certificate is only sound when every
  /// basic variable is genuinely sign-constrained.  An artificial-free
  /// basis stays artificial-free: no phase ever lets one enter.
  bool basis_has_artificial() const {
    for (const std::size_t j : basis_) {
      if (is_artificial(j)) return true;
    }
    return false;
  }

  double dual_infeasibility() const {
    const linalg::Vector y = duals(cost2_);
    double worst = 0.0;
    for (std::size_t j = 0; j < first_artificial_; ++j) {
      if (in_basis_[j]) continue;
      const double rc = cost2_[j] - column_dot(j, y);
      // At-lower columns need rc >= 0, at-upper columns rc <= 0.
      worst = std::max(worst, at_upper_[j] ? rc : -rc);
    }
    return worst;
  }

  struct PhaseResult {
    LpStatus status = LpStatus::kIterationLimit;
    std::size_t iterations = 0;
  };

  /// Primal simplex minimizing `cost` from the current factorized basis.
  /// `artificial_cap` enforces the zero upper bound on basic artificials
  /// (phase 2); phase 1 lets them move freely down to zero.
  PhaseResult primal(const linalg::Vector& cost, bool artificial_cap) {
    PhaseResult res;
    std::size_t stall = 0;
    bool bland = false;
    double best_obj = std::numeric_limits<double>::infinity();
    if (devex_pricing()) devex_.assign(n_cols_, 1.0);

    while (res.iterations < opt_.max_iterations) {
      if (!factor_.valid()) return res;  // numerically wedged
      if (factor_.needs_refactor()) {
        if (!refactorize()) return res;
        recompute_xb();
      }
      const linalg::Vector y = duals(cost);

      const std::size_t enter = price(cost, y, bland).first;
      if (enter == kNone) {
        res.status = LpStatus::kOptimal;
        return res;
      }
      // sigma: +1 when the entering variable rises off its lower bound,
      // -1 when it falls off its upper bound; basics move by -sigma*t*d.
      const double sigma = at_upper_[enter] ? -1.0 : 1.0;

      // --- ftran + two-sided ratio test ---
      linalg::Vector d(m_, 0.0);
      for (const auto& [r, v] : cols_[enter]) d[r] = v;
      solve_ftran(d, /*entering=*/true);

      const auto ratio = [&](std::size_t i) {
        return leave_ratio(i, sigma * d[i], artificial_cap);
      };
      double best_ratio = kInf;
      for (std::size_t i = 0; i < m_; ++i) {
        best_ratio = std::min(best_ratio, ratio(i));
      }
      const double own_bound = upper_[enter];  // flip distance
      if (best_ratio == kInf && own_bound == kInf) {
        res.status = LpStatus::kUnbounded;
        return res;
      }

      if (own_bound <= best_ratio) {
        // Bound flip: the entering variable crosses to its other bound
        // before any basic variable blocks — no basis change, no
        // factorization update.
        for (std::size_t i = 0; i < m_; ++i) {
          xb_[i] -= sigma * own_bound * d[i];
        }
        at_upper_[enter] ^= 1;
        ++res.iterations;
        if (opt_.stats != nullptr) opt_.stats->bound_flips += 1;
      } else {
        const double cut = best_ratio + 1e-9 * (1.0 + std::abs(best_ratio));
        std::size_t leave = kNone;
        double best_pivot = 0.0;
        for (std::size_t i = 0; i < m_; ++i) {
          if (ratio(i) > cut) continue;
          if (bland) {
            if (leave == kNone || basis_[i] < basis_[leave]) leave = i;
          } else if (std::abs(d[i]) > best_pivot) {
            best_pivot = std::abs(d[i]);
            leave = i;
          }
        }

        const double theta = std::max(best_ratio, 0.0);
        for (std::size_t i = 0; i < m_; ++i) xb_[i] -= sigma * theta * d[i];
        // Which bound does the leaving variable settle at?
        const std::size_t leaving_col = basis_[leave];
        at_upper_[leaving_col] =
            (sigma * d[leave] < 0.0 && std::isfinite(upper_[leaving_col]))
                ? 1
                : 0;
        xb_[leave] = at_upper_[enter] ? upper_[enter] - theta : theta;
        if (devex_pricing() && !bland) update_devex(enter, leave, d);
        change_basis(leave, enter, d);
        ++res.iterations;
      }

      double obj = 0.0;
      for (std::size_t i = 0; i < m_; ++i) obj += cost[basis_[i]] * xb_[i];
      for (const std::size_t j : finite_ub_cols_) {
        if (at_upper_[j]) obj += cost[j] * upper_[j];
      }
      if (obj < best_obj - 1e-12) {
        best_obj = obj;
        stall = 0;
        // Progress means we are off the degenerate plateau: resume
        // aggressive pricing.  Termination is still guaranteed — the
        // objective milestones strictly decrease, and each Bland
        // episode between them terminates on its own.
        bland = false;
      } else if (++stall >=
                 (bland ? opt_.bland_stall_abort : opt_.stall_limit)) {
        if (bland) return res;  // give up; caller retries perturbed
        bland = true;
        stall = 0;
      }
    }
    return res;
  }

  /// Boxed dual simplex from a dual-feasible basis — the warm-restart
  /// engine after a rhs move or a bound change.  The leaving basic is
  /// the worst violator of *either* bound; the dual ratio test runs
  /// over bounded nonbasics at both bounds; and candidates whose whole
  /// bound range is absorbed before the violation is covered are bound
  /// *flipped* instead of pivoted (the long-step rule — the dual step
  /// passes their reduced-cost breakpoint, so the flip preserves dual
  /// feasibility).  Stops as soon as the basis is primal feasible;
  /// returns kOptimal in that case (a phase-2 polish confirms
  /// optimality).
  PhaseResult dual(std::size_t max_iters) {
    PhaseResult res;
    while (res.iterations < max_iters) {
      if (!factor_.valid()) return res;
      if (factor_.needs_refactor()) {
        if (!refactorize()) return res;
      }
      recompute_xb();

      // --- leaving row: worst violation of either bound ---
      std::size_t leave = kNone;
      double viol = opt_.feas_tol;
      bool above_upper = false;
      for (std::size_t i = 0; i < m_; ++i) {
        if (-xb_[i] > viol) {
          viol = -xb_[i];
          leave = i;
          above_upper = false;
        }
        const double u = upper_[basis_[i]];
        if (std::isfinite(u) && xb_[i] - u > viol) {
          viol = xb_[i] - u;
          leave = i;
          above_upper = true;
        }
      }
      if (leave == kNone) {
        res.status = LpStatus::kOptimal;
        return res;
      }
      // Sign the leaving basic must move: up toward 0, or down toward u.
      const double dir = above_upper ? -1.0 : 1.0;

      linalg::Vector rho(m_, 0.0);
      rho[leave] = 1.0;
      solve_btran(rho);
      const linalg::Vector y = duals(cost2_);

      // --- boxed dual ratio test ---
      // Eligible: nonbasic j whose feasible move (up from lower, down
      // from upper) pushes the leaving basic toward its violated
      // bound.  Ratio = distance of the reduced cost to its sign
      // boundary per unit of row entry.
      struct Cand {
        std::size_t j;
        double ratio;
        double alpha_abs;
      };
      std::vector<Cand> cands;
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (in_basis_[j] || upper_[j] <= 0.0) continue;
        const double alpha = column_dot(j, rho);
        if (std::abs(alpha) <= opt_.pivot_tol) continue;
        const double e = dir * alpha;
        if (at_upper_[j] ? (e <= 0.0) : (e >= 0.0)) continue;
        const double rc = cost2_[j] - column_dot(j, y);
        const double dist = at_upper_[j] ? std::max(-rc, 0.0)
                                         : std::max(rc, 0.0);
        cands.push_back({j, dist / std::abs(alpha), std::abs(alpha)});
      }
      if (cands.empty()) {
        res.status = LpStatus::kInfeasible;
        return res;
      }
      std::sort(cands.begin(), cands.end(),
                [](const Cand& a, const Cand& b) {
                  if (a.ratio != b.ratio) return a.ratio < b.ratio;
                  return a.alpha_abs > b.alpha_abs;
                });

      // --- long step: flip fully absorbed candidates, pivot the rest --
      std::size_t enter = kNone;
      double remaining = viol;
      for (const Cand& c : cands) {
        const double range = upper_[c.j];
        if (std::isfinite(range) && c.alpha_abs * range < remaining) {
          at_upper_[c.j] ^= 1;  // dual bound flip: no basis change
          remaining -= c.alpha_abs * range;
          if (opt_.stats != nullptr) opt_.stats->bound_flips += 1;
          continue;
        }
        enter = c.j;
        break;
      }
      if (enter == kNone) {
        // Every candidate's whole range was absorbed and violation
        // remains: the dual objective rises along this ray without
        // bound — primal infeasible.
        res.status = LpStatus::kInfeasible;
        return res;
      }

      linalg::Vector d(m_, 0.0);
      for (const auto& [r, v] : cols_[enter]) d[r] = v;
      solve_ftran(d, /*entering=*/true);
      const std::size_t leaving_col = basis_[leave];
      change_basis(leave, enter, d);
      at_upper_[leaving_col] = above_upper ? 1 : 0;
      ++res.iterations;
      if (opt_.stats != nullptr) opt_.stats->dual_iterations += 1;
    }
    return res;
  }

  /// Post-phase-1 cleanup: swap basic artificials for structural or
  /// slack columns where a usable pivot exists; redundant rows keep
  /// their artificial basic at zero (phase 2 never lets it grow).
  void drive_out_artificials() {
    for (std::size_t i = 0; i < m_; ++i) {
      if (!factor_.valid()) return;
      if (!is_artificial(basis_[i])) continue;
      linalg::Vector rho(m_, 0.0);
      rho[i] = 1.0;
      solve_btran(rho);
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (in_basis_[j]) continue;
        if (std::abs(column_dot(j, rho)) <= opt_.pivot_tol) continue;
        linalg::Vector d(m_, 0.0);
        for (const auto& [r, v] : cols_[j]) d[r] = v;
        solve_ftran(d, /*entering=*/true);
        change_basis(i, j, d);
        break;
      }
    }
    if (!factor_.valid()) return;
    recompute_xb();
  }

  double phase1_objective() const {
    double obj = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      if (is_artificial(basis_[i])) obj += std::max(xb_[i], 0.0);
    }
    return obj;
  }

  LpSolution extract(const LpProblem& p) const {
    LpSolution sol;
    sol.status = LpStatus::kOptimal;
    sol.x.assign(n_struct_, 0.0);
    for (const std::size_t j : finite_ub_cols_) {
      if (at_upper_[j] && j < n_struct_) sol.x[j] = upper_[j];
    }
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < n_struct_) {
        sol.x[basis_[i]] = std::max(xb_[i], 0.0);
      }
    }
    sol.objective = p.objective(sol.x);
    return sol;
  }

  const std::vector<std::size_t>& basis() const noexcept { return basis_; }
  std::size_t rows() const noexcept { return m_; }
  const linalg::Vector& phase1_cost() const noexcept { return cost1_; }
  const linalg::Vector& phase2_cost() const noexcept { return cost2_; }

 private:
  /// Folds a singleton (or degenerate) row into the bound set.  Returns
  /// false when the row alone is infeasible against x >= 0; sets `keep`
  /// to 0 when the row is absorbed or redundant.
  bool absorb_row(const Constraint& c, char& keep) {
    // Count structural terms with nonzero coefficients.
    std::size_t nz = 0;
    std::size_t var = 0;
    double coeff = 0.0;
    for (const auto& [j, v] : c.terms) {
      if (v != 0.0) {
        ++nz;
        var = j;
        coeff = v;
      }
    }
    if (nz == 0) {
      // 0 (sense) rhs: decide feasibility outright, to the same
      // tolerance phase 1 would apply to the residual.
      const bool ok = c.sense == Sense::kEq
                          ? std::abs(c.rhs) <= opt_.feas_tol
                          : c.sense == Sense::kLe ? c.rhs >= -opt_.feas_tol
                                                  : c.rhs <= opt_.feas_tol;
      if (!ok) return false;
      keep = 0;
      return true;
    }
    if (nz != 1 || c.sense == Sense::kEq) return true;  // keep as a row
    const double bound = c.rhs / coeff;
    const bool is_upper = (c.sense == Sense::kLe) == (coeff > 0.0);
    if (is_upper) {
      // x_var <= bound: infeasible against x >= 0 when bound < 0
      // (beyond the feasibility tolerance; a within-tolerance negative
      // bound clamps to "fixed at zero").
      if (bound < -opt_.feas_tol) return false;
      upper_struct_[var] = std::min(upper_struct_[var], std::max(bound, 0.0));
      keep = 0;
    } else if (bound <= opt_.feas_tol) {
      keep = 0;  // x_var >= bound <~ 0: implied by nonnegativity
    }
    // Positive lower bounds are not representable; keep the row.
    return true;
  }

  void rebuild_in_basis() {
    in_basis_.assign(n_cols_, 0);
    for (const std::size_t j : basis_) in_basis_[j] = 1;
  }

  /// True when column j may price in: nonbasic, not artificial, and not
  /// fixed at zero by a zero upper bound.
  bool price_eligible(std::size_t j) const {
    return !in_basis_[j] && upper_[j] > 0.0;
  }

  /// Devex reference weights active (full-scan or fused with partial
  /// sections)?
  bool devex_pricing() const noexcept {
    return opt_.pricing == RevisedSimplexOptions::Pricing::kSteepestEdge ||
           opt_.pricing == RevisedSimplexOptions::Pricing::kPartialDevex;
  }

  /// Entering-column selection.  Returns {kNone, 0} at optimality.
  /// Bland mode always scans everything by index (anti-cycling); Devex
  /// scans everything weighted; Dantzig scans everything; partial
  /// pricing scans rotating sections and returns the best candidate of
  /// the first section that has one.
  std::pair<std::size_t, double> price(const linalg::Vector& cost,
                                       const linalg::Vector& y, bool bland) {
    const auto reduced_cost = [&](std::size_t j) {
      return cost[j] - column_dot(j, y);
    };
    // Attractive = can improve the objective moving off its bound.
    const auto attractive = [&](std::size_t j, double rc) {
      return at_upper_[j] ? rc > opt_.reduced_cost_tol
                          : rc < -opt_.reduced_cost_tol;
    };
    if (bland) {
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (!price_eligible(j)) continue;
        const double rc = reduced_cost(j);
        if (attractive(j, rc)) return {j, rc};
      }
      return {kNone, 0.0};
    }
    const bool devex = devex_pricing();
    const bool partial =
        opt_.pricing == RevisedSimplexOptions::Pricing::kPartial ||
        opt_.pricing == RevisedSimplexOptions::Pricing::kPartialDevex;
    const std::size_t section =
        !partial ? first_artificial_
                 : (opt_.partial_section != 0
                        ? opt_.partial_section
                        : std::max<std::size_t>(
                              256, 4 * static_cast<std::size_t>(std::sqrt(
                                       static_cast<double>(
                                           first_artificial_)))));

    std::size_t enter = kNone;
    double enter_rc = 0.0;
    double best_score = 0.0;
    std::size_t scanned = 0;
    std::size_t j = partial ? price_start_ % first_artificial_ : 0;
    while (scanned < first_artificial_) {
      const std::size_t chunk =
          std::min(section, first_artificial_ - scanned);
      for (std::size_t k = 0; k < chunk; ++k) {
        if (price_eligible(j)) {
          const double rc = reduced_cost(j);
          if (attractive(j, rc)) {
            double score = std::abs(rc);
            if (devex) score = rc * rc / devex_[j];
            if (enter == kNone || score > best_score) {
              best_score = score;
              enter = j;
              enter_rc = rc;
            }
          }
        }
        if (++j == first_artificial_) j = 0;
      }
      scanned += chunk;
      if (partial && enter != kNone) break;
    }
    if (partial) price_start_ = j;
    section_size_ = section;
    return {enter, enter_rc};
  }

  /// Ratio contributed by basic position i when the entering column
  /// moves the basics by -delta_i per unit step; +inf when i cannot
  /// limit the step.  Decreasing basics stop at zero; increasing basics
  /// stop at their upper bound.  Basic artificials outside phase 1 also
  /// block movement *upward* (their upper bound is zero), which keeps
  /// phase 2 from re-entering infeasibility through a redundant row.
  double leave_ratio(std::size_t i, double delta, bool artificial_cap) const {
    if (delta > opt_.pivot_tol) {
      return std::max(xb_[i], 0.0) / delta;
    }
    if (delta < -opt_.pivot_tol) {
      const std::size_t b = basis_[i];
      if (artificial_cap && is_artificial(b)) {
        return std::max(-xb_[i], 0.0) / -delta;
      }
      if (std::isfinite(upper_[b])) {
        return std::max(upper_[b] - xb_[i], 0.0) / -delta;
      }
    }
    return kInf;
  }

  void change_basis(std::size_t leave, std::size_t enter,
                    const linalg::Vector& d) {
    in_basis_[basis_[leave]] = 0;
    in_basis_[enter] = 1;
    at_upper_[enter] = 0;  // basic variables are never at a bound marker
    basis_[leave] = enter;
    const double t0 = opt_.stats != nullptr ? now_ms() : 0.0;
    const bool updated = factor_.update(leave, d);
    if (opt_.stats != nullptr) {
      opt_.stats->update_ms += now_ms() - t0;
      if (updated) opt_.stats->ft_updates += 1;
    }
    if (!updated) {
      if (refactorize()) {
        recompute_xb();
      }
      // A singular refactorization here leaves factor_ invalid; the
      // next loop iteration's refactorize() attempt reports it.
    }
  }

  /// Devex reference-weight update (Forrest–Goldfarb approximation of
  /// steepest edge): needs the pivot row, one extra btran per iteration.
  /// Under fused partial pricing the weight propagation is restricted
  /// to the section the *next* pricing pass will scan first (the
  /// rotation makes that section known now), so the candidates about
  /// to compete carry weights reflecting this pivot at the same cost
  /// as the scan itself.  Columns beyond the next section keep stale
  /// (smaller) weights, which only makes them look slightly more
  /// attractive when their turn comes — a bias, not an error.
  void update_devex(std::size_t enter, std::size_t leave,
                    const linalg::Vector& d) {
    const double dr = d[leave];
    if (std::abs(dr) < 1e-12) return;
    linalg::Vector rho(m_, 0.0);
    rho[leave] = 1.0;
    solve_btran(rho);
    const double wq = devex_[enter];
    const bool restrict_scan =
        opt_.pricing == RevisedSimplexOptions::Pricing::kPartialDevex &&
        section_size_ < first_artificial_;
    const std::size_t count =
        restrict_scan ? section_size_ : first_artificial_;
    double max_w = 0.0;
    std::size_t j = restrict_scan ? price_start_ % first_artificial_ : 0;
    for (std::size_t k = 0; k < count; ++k) {
      if (!in_basis_[j] && j != enter) {
        const double alpha = column_dot(j, rho);
        if (alpha != 0.0) {
          const double cand = (alpha / dr) * (alpha / dr) * wq;
          if (cand > devex_[j]) devex_[j] = cand;
          max_w = std::max(max_w, devex_[j]);
        }
      }
      if (++j == first_artificial_) j = 0;
    }
    devex_[basis_[leave]] = std::max(wq / (dr * dr), 1.0);
    if (max_w > 1e8) devex_.assign(n_cols_, 1.0);  // reference reset
  }

  RevisedSimplexOptions opt_;
  std::size_t m_ = 0;
  std::size_t n_struct_ = 0;
  std::size_t n_cols_ = 0;
  std::size_t first_artificial_ = 0;
  bool infeasible_by_bounds_ = false;
  std::vector<linalg::SparseColumn> cols_;
  std::vector<std::size_t> slack_of_row_;
  linalg::Vector rhs_;
  linalg::Vector upper_struct_;  // structural bounds incl. absorbed rows
  linalg::Vector upper_;         // per standard-form column
  std::vector<std::size_t> finite_ub_cols_;
  std::vector<char> at_upper_;
  linalg::Vector cost1_, cost2_;
  std::vector<std::size_t> basis_;
  std::vector<char> in_basis_;
  linalg::Vector xb_;
  linalg::Vector devex_;
  std::size_t price_start_ = 0;
  std::size_t section_size_ = 0;  // last pricing section, for the
                                  // section-local Devex weight update
  linalg::BasisFactorization factor_;
};

LpSolution solve_once(const LpProblem& problem,
                      const RevisedSimplexOptions& opt,
                      const SimplexBasis* warm, SimplexBasis* basis_out) {
  RevisedSimplex engine(problem, opt);
  LpSolution sol;
  if (engine.infeasible_by_bounds()) {
    sol.status = LpStatus::kInfeasible;
    return sol;
  }

  // --- warm-started path -------------------------------------------
  // The basis stays dual feasible under rhs moves and bound changes
  // alike (neither touches the costs), so the boxed dual simplex can
  // repair whichever primal infeasibility the perturbation introduced.
  bool warm_done = false;
  if (warm != nullptr && !warm->empty()) {
    if (engine.install_warm_basis(*warm) && !engine.basis_has_artificial() &&
        engine.refactorize()) {
      engine.recompute_xb();
      if (engine.dual_infeasibility() <= 1e-6) {
        RevisedSimplex::PhaseResult dres = {LpStatus::kOptimal, 0};
        if (engine.primal_infeasibility() > opt.feas_tol) {
          dres = engine.dual(opt.max_dual_iterations);
          sol.iterations += dres.iterations;
        }
        if (dres.status == LpStatus::kInfeasible) {
          sol.status = LpStatus::kInfeasible;
          return sol;
        }
        if (dres.status == LpStatus::kOptimal) {
          // Polish / confirm with phase-2 pivots (usually zero).
          const auto r2 = engine.primal(engine.phase2_cost(),
                                        /*artificial_cap=*/true);
          sol.iterations += r2.iterations;
          if (r2.status == LpStatus::kOptimal) {
            const std::size_t iters = sol.iterations;
            sol = engine.extract(problem);
            sol.iterations = iters;
            warm_done = true;
          }
        }
      }
    }
    if (warm_done) {
      engine.save_basis(basis_out);
      return sol;
    }
    // Fall through to a cold solve on any warm-start trouble.
    sol = LpSolution{};
  }

  // --- cold path ----------------------------------------------------
  const bool need_phase1 = engine.install_cold_basis();
  if (!engine.refactorize()) {
    return sol;  // kIterationLimit: pathological initial basis
  }
  engine.recompute_xb();

  if (need_phase1) {
    const auto r1 = engine.primal(engine.phase1_cost(),
                                  /*artificial_cap=*/false);
    sol.iterations += r1.iterations;
    if (r1.status != LpStatus::kOptimal) {
      sol.status = r1.status == LpStatus::kUnbounded ? LpStatus::kIterationLimit
                                                     : r1.status;
      return sol;
    }
    if (engine.phase1_objective() > opt.feas_tol) {
      sol.status = LpStatus::kInfeasible;
      return sol;
    }
    engine.drive_out_artificials();
  }

  const auto r2 = engine.primal(engine.phase2_cost(),
                                /*artificial_cap=*/true);
  sol.iterations += r2.iterations;
  sol.status = r2.status;
  if (r2.status != LpStatus::kOptimal) return sol;

  const std::size_t iters = sol.iterations;
  sol = engine.extract(problem);
  sol.iterations = iters;
  engine.save_basis(basis_out);
  return sol;
}

// Process-wide pivot odometer (monotone, never reset): lets tests
// assert that a cached scenario replay executed *zero* simplex work,
// not merely that it produced the same numbers.
std::atomic<std::uint64_t> g_pivots_executed{0};

}  // namespace

std::uint64_t pivots_executed() noexcept {
  return g_pivots_executed.load(std::memory_order_relaxed);
}

LpSolution solve_revised_simplex(const LpProblem& problem,
                                 const RevisedSimplexOptions& options,
                                 const SimplexBasis* warm,
                                 SimplexBasis* basis_out) {
  if (problem.num_variables() == 0) {
    throw LpError("revised-simplex: problem has no variables");
  }
  const double t0 = now_ms();
  if (options.stats != nullptr) *options.stats = SimplexStats{};
  LpSolution sol = solve_once(problem, options, warm, basis_out);
  if (sol.status != LpStatus::kIterationLimit) {
    if (options.stats != nullptr) {
      options.stats->solve_ms = now_ms() - t0;
      options.stats->iterations = sol.iterations;
    }
    g_pivots_executed.fetch_add(sol.iterations, std::memory_order_relaxed);
    return sol;
  }

  // Degeneracy stall: retry cold on deterministically perturbed copies,
  // the same remedy (and helper) the dense tableau uses.
  for (const double eps : {1e-11, 1e-9, 1e-7}) {
    const LpProblem copy = perturbed_copy(problem, eps);
    const LpSolution retry = solve_once(copy, options, nullptr, basis_out);
    if (retry.status != LpStatus::kIterationLimit) {
      LpSolution out = retry;
      if (out.status == LpStatus::kOptimal) {
        out.objective = problem.objective(out.x);
      }
      out.iterations += sol.iterations;
      if (options.stats != nullptr) {
        options.stats->solve_ms = now_ms() - t0;
        options.stats->iterations = out.iterations;
      }
      g_pivots_executed.fetch_add(out.iterations, std::memory_order_relaxed);
      return out;
    }
  }
  if (options.stats != nullptr) {
    options.stats->solve_ms = now_ms() - t0;
    options.stats->iterations = sol.iterations;
  }
  g_pivots_executed.fetch_add(sol.iterations, std::memory_order_relaxed);
  return sol;
}

}  // namespace dpm::lp
