#include "lp/revised_simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/sparse_lu.h"

namespace dpm::lp {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

// Standard-form engine: columns [structural | slack/surplus | artificial]
// over equality rows A x = b, x >= 0.  Artificials carry an implicit
// upper bound of zero outside phase 1 and are never allowed to enter.
class RevisedSimplex {
 public:
  RevisedSimplex(const LpProblem& p, const RevisedSimplexOptions& opt)
      : opt_(opt),
        m_(p.num_constraints()),
        n_struct_(p.num_variables()),
        factor_(opt.refactor_interval) {
    const linalg::SparseMatrixCsc a = p.constraint_csc();
    cols_.reserve(n_struct_ + 2 * m_);
    for (std::size_t j = 0; j < n_struct_; ++j) {
      linalg::SparseColumn col;
      col.reserve(a.col_end(j) - a.col_begin(j));
      for (std::size_t k = a.col_begin(j); k < a.col_end(j); ++k) {
        col.emplace_back(a.row_indices()[k], a.values()[k]);
      }
      cols_.push_back(std::move(col));
    }
    rhs_.resize(m_);
    slack_of_row_.assign(m_, kNone);
    for (std::size_t i = 0; i < m_; ++i) {
      const Constraint& c = p.constraints()[i];
      rhs_[i] = c.rhs;
      if (c.sense != Sense::kEq) {
        slack_of_row_[i] = cols_.size();
        cols_.push_back({{i, c.sense == Sense::kLe ? 1.0 : -1.0}});
      }
    }
    first_artificial_ = cols_.size();
    for (std::size_t i = 0; i < m_; ++i) {
      cols_.push_back({{i, rhs_[i] < 0.0 ? -1.0 : 1.0}});
    }
    n_cols_ = cols_.size();

    cost2_.assign(n_cols_, 0.0);
    for (std::size_t j = 0; j < n_struct_; ++j) cost2_[j] = p.costs()[j];
    cost1_.assign(n_cols_, 0.0);
    for (std::size_t j = first_artificial_; j < n_cols_; ++j) cost1_[j] = 1.0;
  }

  bool is_artificial(std::size_t j) const { return j >= first_artificial_; }

  /// Cold start: slack basis where the slack sign admits it, artificial
  /// elsewhere.  Returns true when any artificial entered the basis
  /// (phase 1 required).
  bool install_cold_basis() {
    basis_.assign(m_, kNone);
    bool need_phase1 = false;
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t s = slack_of_row_[i];
      if (s != kNone) {
        const double sigma = cols_[s].front().second;
        if (rhs_[i] / sigma >= 0.0) {
          basis_[i] = s;
          continue;
        }
      }
      basis_[i] = first_artificial_ + i;
      need_phase1 = true;
    }
    rebuild_in_basis();
    return need_phase1;
  }

  bool install_warm_basis(const SimplexBasis& warm) {
    if (warm.basic.size() != m_) return false;
    for (const std::size_t j : warm.basic) {
      if (j >= n_cols_) return false;
    }
    basis_ = warm.basic;
    rebuild_in_basis();
    return true;
  }

  bool refactorize() {
    std::vector<linalg::SparseColumn> bcols(m_);
    for (std::size_t i = 0; i < m_; ++i) bcols[i] = cols_[basis_[i]];
    return factor_.refactorize(m_, bcols);
  }

  void recompute_xb() {
    xb_ = rhs_;
    factor_.ftran(xb_);
  }

  linalg::Vector duals(const linalg::Vector& cost) const {
    linalg::Vector y(m_);
    for (std::size_t i = 0; i < m_; ++i) y[i] = cost[basis_[i]];
    factor_.btran(y);
    return y;
  }

  double column_dot(std::size_t j, const linalg::Vector& y) const {
    double acc = 0.0;
    for (const auto& [r, v] : cols_[j]) acc += v * y[r];
    return acc;
  }

  double primal_infeasibility() const {
    double worst = 0.0;
    for (const double v : xb_) worst = std::max(worst, -v);
    return worst;
  }

  /// True when any artificial column sits in the basis (a redundant
  /// row's placeholder, legitimate only at value zero).  Warm starts
  /// must refuse such bases: a rhs change can push the artificial
  /// positive — which neither the dual simplex (it targets negative xb)
  /// nor phase 2 (it only caps artificial growth) can repair — and the
  /// dual simplex's infeasibility certificate is only sound when every
  /// basic variable is genuinely sign-constrained.  An artificial-free
  /// basis stays artificial-free: no phase ever lets one enter.
  bool basis_has_artificial() const {
    for (const std::size_t j : basis_) {
      if (is_artificial(j)) return true;
    }
    return false;
  }

  double dual_infeasibility() const {
    const linalg::Vector y = duals(cost2_);
    double worst = 0.0;
    for (std::size_t j = 0; j < first_artificial_; ++j) {
      if (in_basis_[j]) continue;
      worst = std::max(worst, -(cost2_[j] - column_dot(j, y)));
    }
    return worst;
  }

  struct PhaseResult {
    LpStatus status = LpStatus::kIterationLimit;
    std::size_t iterations = 0;
  };

  /// Primal simplex minimizing `cost` from the current factorized basis.
  /// `artificial_cap` enforces the zero upper bound on basic artificials
  /// (phase 2); phase 1 lets them move freely down to zero.
  PhaseResult primal(const linalg::Vector& cost, bool artificial_cap) {
    PhaseResult res;
    std::size_t stall = 0;
    bool bland = false;
    double best_obj = std::numeric_limits<double>::infinity();
    if (opt_.pricing == RevisedSimplexOptions::Pricing::kSteepestEdge) {
      devex_.assign(n_cols_, 1.0);
    }

    while (res.iterations < opt_.max_iterations) {
      if (!factor_.valid()) return res;  // numerically wedged
      if (factor_.needs_refactor()) {
        if (!refactorize()) return res;
        recompute_xb();
      }
      const linalg::Vector y = duals(cost);

      // --- pricing ---
      std::size_t enter = kNone;
      double enter_rc = 0.0;
      double best_score = 0.0;
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (in_basis_[j]) continue;
        const double rc = cost[j] - column_dot(j, y);
        if (rc >= -opt_.reduced_cost_tol) continue;
        if (bland) {
          enter = j;
          enter_rc = rc;
          break;
        }
        double score = -rc;
        if (opt_.pricing == RevisedSimplexOptions::Pricing::kSteepestEdge) {
          score = rc * rc / devex_[j];
        }
        if (enter == kNone || score > best_score) {
          best_score = score;
          enter = j;
          enter_rc = rc;
        }
      }
      if (enter == kNone) {
        res.status = LpStatus::kOptimal;
        return res;
      }

      // --- ftran + ratio test ---
      linalg::Vector d(m_, 0.0);
      for (const auto& [r, v] : cols_[enter]) d[r] = v;
      factor_.ftran(d);

      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < m_; ++i) {
        const double ratio = leave_ratio(i, d[i], artificial_cap);
        if (ratio < best_ratio) best_ratio = ratio;
      }
      if (best_ratio == std::numeric_limits<double>::infinity()) {
        res.status = LpStatus::kUnbounded;
        return res;
      }
      const double cut = best_ratio + 1e-9 * (1.0 + std::abs(best_ratio));
      std::size_t leave = kNone;
      double best_pivot = 0.0;
      for (std::size_t i = 0; i < m_; ++i) {
        const double ratio = leave_ratio(i, d[i], artificial_cap);
        if (ratio > cut) continue;
        if (bland) {
          if (leave == kNone || basis_[i] < basis_[leave]) leave = i;
        } else if (std::abs(d[i]) > best_pivot) {
          best_pivot = std::abs(d[i]);
          leave = i;
        }
      }

      const double theta = std::max(best_ratio, 0.0);
      for (std::size_t i = 0; i < m_; ++i) xb_[i] -= theta * d[i];
      xb_[leave] = theta;
      if (opt_.pricing == RevisedSimplexOptions::Pricing::kSteepestEdge &&
          !bland) {
        update_devex(enter, leave, d);
      }
      change_basis(leave, enter, d);
      ++res.iterations;

      double obj = 0.0;
      for (std::size_t i = 0; i < m_; ++i) obj += cost[basis_[i]] * xb_[i];
      if (obj < best_obj - 1e-12) {
        best_obj = obj;
        stall = 0;
        // Progress means we are off the degenerate plateau: resume
        // aggressive pricing.  Termination is still guaranteed — the
        // objective milestones strictly decrease, and each Bland
        // episode between them terminates on its own.
        bland = false;
      } else if (++stall >=
                 (bland ? opt_.bland_stall_abort : opt_.stall_limit)) {
        if (bland) return res;  // give up; caller retries perturbed
        bland = true;
        stall = 0;
      }
    }
    return res;
  }

  /// Dual simplex from a dual-feasible basis (warm restarts after a rhs
  /// change).  Stops as soon as the basis is primal feasible; returns
  /// kOptimal in that case (a phase-2 polish confirms optimality).
  PhaseResult dual(std::size_t max_iters) {
    PhaseResult res;
    while (res.iterations < max_iters) {
      if (!factor_.valid()) return res;
      if (factor_.needs_refactor()) {
        if (!refactorize()) return res;
      }
      recompute_xb();
      std::size_t leave = kNone;
      double most_negative = -opt_.feas_tol;
      for (std::size_t i = 0; i < m_; ++i) {
        if (xb_[i] < most_negative) {
          most_negative = xb_[i];
          leave = i;
        }
      }
      if (leave == kNone) {
        res.status = LpStatus::kOptimal;
        return res;
      }

      linalg::Vector rho(m_, 0.0);
      rho[leave] = 1.0;
      factor_.btran(rho);
      const linalg::Vector y = duals(cost2_);

      std::size_t enter = kNone;
      double best_ratio = std::numeric_limits<double>::infinity();
      double best_alpha = 0.0;
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (in_basis_[j]) continue;
        const double alpha = column_dot(j, rho);
        if (alpha >= -opt_.pivot_tol) continue;
        const double rc = std::max(cost2_[j] - column_dot(j, y), 0.0);
        const double ratio = rc / -alpha;
        if (ratio < best_ratio - 1e-12 ||
            (ratio < best_ratio + 1e-12 && -alpha > best_alpha)) {
          best_ratio = ratio;
          best_alpha = -alpha;
          enter = j;
        }
      }
      if (enter == kNone) {
        res.status = LpStatus::kInfeasible;
        return res;
      }

      linalg::Vector d(m_, 0.0);
      for (const auto& [r, v] : cols_[enter]) d[r] = v;
      factor_.ftran(d);
      change_basis(leave, enter, d);
      ++res.iterations;
    }
    return res;
  }

  /// Post-phase-1 cleanup: swap basic artificials for structural or
  /// slack columns where a usable pivot exists; redundant rows keep
  /// their artificial basic at zero (phase 2 never lets it grow).
  void drive_out_artificials() {
    for (std::size_t i = 0; i < m_; ++i) {
      if (!factor_.valid()) return;
      if (!is_artificial(basis_[i])) continue;
      linalg::Vector rho(m_, 0.0);
      rho[i] = 1.0;
      factor_.btran(rho);
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (in_basis_[j]) continue;
        if (std::abs(column_dot(j, rho)) <= opt_.pivot_tol) continue;
        linalg::Vector d(m_, 0.0);
        for (const auto& [r, v] : cols_[j]) d[r] = v;
        factor_.ftran(d);
        change_basis(i, j, d);
        break;
      }
    }
    if (!factor_.valid()) return;
    recompute_xb();
  }

  double phase1_objective() const {
    double obj = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      if (is_artificial(basis_[i])) obj += std::max(xb_[i], 0.0);
    }
    return obj;
  }

  LpSolution extract(const LpProblem& p) const {
    LpSolution sol;
    sol.status = LpStatus::kOptimal;
    sol.x.assign(n_struct_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < n_struct_) {
        sol.x[basis_[i]] = std::max(xb_[i], 0.0);
      }
    }
    sol.objective = p.objective(sol.x);
    return sol;
  }

  const std::vector<std::size_t>& basis() const noexcept { return basis_; }
  std::size_t rows() const noexcept { return m_; }
  const linalg::Vector& phase1_cost() const noexcept { return cost1_; }
  const linalg::Vector& phase2_cost() const noexcept { return cost2_; }

 private:
  void rebuild_in_basis() {
    in_basis_.assign(n_cols_, 0);
    for (const std::size_t j : basis_) in_basis_[j] = 1;
  }

  /// Ratio contributed by basic position i when the entering column's
  /// ftran image is di; +inf when i cannot limit the step.  Basic
  /// artificials outside phase 1 also block movement *upward* (their
  /// upper bound is zero), which keeps phase 2 from re-entering
  /// infeasibility through a redundant row.
  double leave_ratio(std::size_t i, double di, bool artificial_cap) const {
    if (di > opt_.pivot_tol) {
      return std::max(xb_[i], 0.0) / di;
    }
    if (artificial_cap && di < -opt_.pivot_tol && is_artificial(basis_[i])) {
      return std::max(-xb_[i], 0.0) / -di;
    }
    return std::numeric_limits<double>::infinity();
  }

  void change_basis(std::size_t leave, std::size_t enter,
                    const linalg::Vector& d) {
    in_basis_[basis_[leave]] = 0;
    in_basis_[enter] = 1;
    basis_[leave] = enter;
    if (!factor_.update(leave, d)) {
      if (refactorize()) {
        recompute_xb();
      }
      // A singular refactorization here leaves factor_ invalid; the
      // next loop iteration's refactorize() attempt reports it.
    }
  }

  /// Devex reference-weight update (Forrest–Goldfarb approximation of
  /// steepest edge): needs the pivot row, one extra btran per iteration.
  void update_devex(std::size_t enter, std::size_t leave,
                    const linalg::Vector& d) {
    const double dr = d[leave];
    if (std::abs(dr) < 1e-12) return;
    linalg::Vector rho(m_, 0.0);
    rho[leave] = 1.0;
    factor_.btran(rho);
    const double wq = devex_[enter];
    double max_w = 0.0;
    for (std::size_t j = 0; j < first_artificial_; ++j) {
      if (in_basis_[j] || j == enter) continue;
      const double alpha = column_dot(j, rho);
      if (alpha == 0.0) continue;
      const double cand = (alpha / dr) * (alpha / dr) * wq;
      if (cand > devex_[j]) devex_[j] = cand;
      max_w = std::max(max_w, devex_[j]);
    }
    devex_[basis_[leave]] = std::max(wq / (dr * dr), 1.0);
    if (max_w > 1e8) devex_.assign(n_cols_, 1.0);  // reference reset
  }

  RevisedSimplexOptions opt_;
  std::size_t m_ = 0;
  std::size_t n_struct_ = 0;
  std::size_t n_cols_ = 0;
  std::size_t first_artificial_ = 0;
  std::vector<linalg::SparseColumn> cols_;
  std::vector<std::size_t> slack_of_row_;
  linalg::Vector rhs_;
  linalg::Vector cost1_, cost2_;
  std::vector<std::size_t> basis_;
  std::vector<char> in_basis_;
  linalg::Vector xb_;
  linalg::Vector devex_;
  linalg::BasisFactorization factor_;
};

LpSolution solve_once(const LpProblem& problem,
                      const RevisedSimplexOptions& opt,
                      const SimplexBasis* warm, SimplexBasis* basis_out) {
  RevisedSimplex engine(problem, opt);
  LpSolution sol;

  // --- warm-started path -------------------------------------------
  bool warm_done = false;
  if (warm != nullptr && !warm->empty()) {
    if (engine.install_warm_basis(*warm) && !engine.basis_has_artificial() &&
        engine.refactorize()) {
      engine.recompute_xb();
      if (engine.dual_infeasibility() <= 1e-6) {
        RevisedSimplex::PhaseResult dres = {LpStatus::kOptimal, 0};
        if (engine.primal_infeasibility() > opt.feas_tol) {
          dres = engine.dual(opt.max_dual_iterations);
          sol.iterations += dres.iterations;
        }
        if (dres.status == LpStatus::kInfeasible) {
          sol.status = LpStatus::kInfeasible;
          return sol;
        }
        if (dres.status == LpStatus::kOptimal) {
          // Polish / confirm with phase-2 pivots (usually zero).
          const auto r2 = engine.primal(engine.phase2_cost(),
                                        /*artificial_cap=*/true);
          sol.iterations += r2.iterations;
          if (r2.status == LpStatus::kOptimal) {
            const std::size_t iters = sol.iterations;
            sol = engine.extract(problem);
            sol.iterations = iters;
            warm_done = true;
          }
        }
      }
    }
    if (warm_done) {
      if (basis_out != nullptr) basis_out->basic = engine.basis();
      return sol;
    }
    // Fall through to a cold solve on any warm-start trouble.
    sol = LpSolution{};
  }

  // --- cold path ----------------------------------------------------
  const bool need_phase1 = engine.install_cold_basis();
  if (!engine.refactorize()) {
    return sol;  // kIterationLimit: pathological initial basis
  }
  engine.recompute_xb();

  if (need_phase1) {
    const auto r1 = engine.primal(engine.phase1_cost(),
                                  /*artificial_cap=*/false);
    sol.iterations += r1.iterations;
    if (r1.status != LpStatus::kOptimal) {
      sol.status = r1.status == LpStatus::kUnbounded ? LpStatus::kIterationLimit
                                                     : r1.status;
      return sol;
    }
    if (engine.phase1_objective() > opt.feas_tol) {
      sol.status = LpStatus::kInfeasible;
      return sol;
    }
    engine.drive_out_artificials();
  }

  const auto r2 = engine.primal(engine.phase2_cost(),
                                /*artificial_cap=*/true);
  sol.iterations += r2.iterations;
  sol.status = r2.status;
  if (r2.status != LpStatus::kOptimal) return sol;

  const std::size_t iters = sol.iterations;
  sol = engine.extract(problem);
  sol.iterations = iters;
  if (basis_out != nullptr) basis_out->basic = engine.basis();
  return sol;
}

}  // namespace

LpSolution solve_revised_simplex(const LpProblem& problem,
                                 const RevisedSimplexOptions& options,
                                 const SimplexBasis* warm,
                                 SimplexBasis* basis_out) {
  if (problem.num_variables() == 0) {
    throw LpError("revised-simplex: problem has no variables");
  }
  LpSolution sol = solve_once(problem, options, warm, basis_out);
  if (sol.status != LpStatus::kIterationLimit) return sol;

  // Degeneracy stall: retry cold on deterministically perturbed copies,
  // the same remedy (and helper) the dense tableau uses.
  for (const double eps : {1e-11, 1e-9, 1e-7}) {
    const LpProblem copy = perturbed_copy(problem, eps);
    const LpSolution retry = solve_once(copy, options, nullptr, basis_out);
    if (retry.status != LpStatus::kIterationLimit) {
      LpSolution out = retry;
      if (out.status == LpStatus::kOptimal) {
        out.objective = problem.objective(out.x);
      }
      out.iterations += sol.iterations;
      return out;
    }
  }
  return sol;
}

}  // namespace dpm::lp
