#include "lp/problem.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace dpm::lp {

std::size_t LpProblem::add_variable(double cost, std::string name) {
  costs_.push_back(cost);
  upper_.push_back(std::numeric_limits<double>::infinity());
  if (name.empty()) {
    name = "x" + std::to_string(costs_.size() - 1);
  }
  names_.push_back(std::move(name));
  return costs_.size() - 1;
}

void LpProblem::set_upper_bound(std::size_t j, double upper) {
  if (j >= num_variables()) {
    throw LpError("lp: set_upper_bound variable out of range");
  }
  if (std::isnan(upper) || upper < 0.0) {
    throw LpError("lp: upper bound must be >= 0");
  }
  upper_[j] = upper;
}

bool LpProblem::has_finite_upper_bounds() const noexcept {
  for (const double u : upper_) {
    if (std::isfinite(u)) return true;
  }
  return false;
}

void LpProblem::add_constraint(Constraint c) {
  // Merge duplicate columns so solvers can assume unique indices per row.
  std::map<std::size_t, double> merged;
  for (const auto& [col, coeff] : c.terms) {
    if (col >= num_variables()) {
      throw LpError("lp: constraint references unknown variable " +
                    std::to_string(col));
    }
    merged[col] += coeff;
  }
  c.terms.assign(merged.begin(), merged.end());
  constraints_.push_back(std::move(c));
}

void LpProblem::set_rhs(std::size_t row, double rhs) {
  if (row >= constraints_.size()) {
    throw LpError("lp: set_rhs row out of range");
  }
  constraints_[row].rhs = rhs;
}

linalg::SparseMatrixCsc LpProblem::constraint_csc() const {
  std::vector<linalg::Triplet> triplets;
  std::size_t nnz = 0;
  for (const Constraint& c : constraints_) nnz += c.terms.size();
  triplets.reserve(nnz);
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    for (const auto& [col, coeff] : constraints_[i].terms) {
      triplets.push_back({i, col, coeff});
    }
  }
  return linalg::SparseMatrixCsc::from_triplets(num_constraints(),
                                                num_variables(), triplets);
}

void LpProblem::add_dense_constraint(const linalg::Vector& row, Sense sense,
                                     double rhs, std::string name) {
  if (row.size() != num_variables()) {
    throw LpError("lp: dense row size mismatch");
  }
  Constraint c;
  c.sense = sense;
  c.rhs = rhs;
  c.name = std::move(name);
  for (std::size_t j = 0; j < row.size(); ++j) {
    if (row[j] != 0.0) c.terms.emplace_back(j, row[j]);
  }
  add_constraint(std::move(c));
}

double LpProblem::objective(const linalg::Vector& x) const {
  if (x.size() != num_variables()) {
    throw LpError("lp: point size mismatch");
  }
  return linalg::dot(costs_, x);
}

double LpProblem::max_violation(const linalg::Vector& x) const {
  if (x.size() != num_variables()) {
    throw LpError("lp: point size mismatch");
  }
  double worst = 0.0;
  for (std::size_t j = 0; j < x.size(); ++j) {
    worst = std::max(worst, -x[j]);  // x >= 0
    if (std::isfinite(upper_[j])) {
      worst = std::max(worst, x[j] - upper_[j]);
    }
  }
  for (const auto& c : constraints_) {
    double lhs = 0.0;
    for (const auto& [col, coeff] : c.terms) lhs += coeff * x[col];
    switch (c.sense) {
      case Sense::kEq:
        worst = std::max(worst, std::abs(lhs - c.rhs));
        break;
      case Sense::kLe:
        worst = std::max(worst, lhs - c.rhs);
        break;
      case Sense::kGe:
        worst = std::max(worst, c.rhs - lhs);
        break;
    }
  }
  return worst;
}

void LpProblem::hash_into(sim::Fnv1a& h) const {
  h.add_string("LpProblem");
  h.add_size(costs_.size());
  for (const double c : costs_) h.add_double(c);
  // +inf (the default bound) hashes by its bit pattern like any value.
  for (const double u : upper_) h.add_double(u);
  h.add_size(constraints_.size());
  for (const Constraint& c : constraints_) {
    h.add_byte(static_cast<unsigned char>(c.sense));
    h.add_double(c.rhs);
    h.add_size(c.terms.size());
    // add_constraint canonicalized terms (sorted unique columns).
    for (const auto& [col, coeff] : c.terms) {
      h.add_size(col);
      h.add_double(coeff);
    }
  }
}

LpProblem bounds_as_rows(const LpProblem& problem) {
  LpProblem copy;
  for (std::size_t j = 0; j < problem.num_variables(); ++j) {
    copy.add_variable(problem.costs()[j], problem.variable_name(j));
  }
  for (const Constraint& c : problem.constraints()) {
    copy.add_constraint(c);
  }
  for (std::size_t j = 0; j < problem.num_variables(); ++j) {
    const double u = problem.upper_bounds()[j];
    if (std::isfinite(u)) {
      copy.add_constraint({{{j, 1.0}},
                           Sense::kLe,
                           u,
                           "ub(" + problem.variable_name(j) + ")"});
    }
  }
  return copy;
}

LpProblem perturbed_copy(const LpProblem& problem, double eps) {
  LpProblem copy;
  for (std::size_t j = 0; j < problem.num_variables(); ++j) {
    copy.add_variable(problem.costs()[j], problem.variable_name(j));
    copy.set_upper_bound(j, problem.upper_bounds()[j]);
  }
  double scale = 1.0;
  for (const Constraint& c : problem.constraints()) {
    scale = std::max(scale, std::abs(c.rhs));
  }
  std::size_t i = 0;
  for (Constraint c : problem.constraints()) {
    c.rhs += eps * static_cast<double>(i + 1) * scale /
             static_cast<double>(problem.num_constraints());
    copy.add_constraint(std::move(c));
    ++i;
  }
  return copy;
}

const char* to_string(LpStatus s) noexcept {
  switch (s) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
    case LpStatus::kIterationLimit:
      return "iteration-limit";
    case LpStatus::kNumericalFailure:
      return "numerical-failure";
    case LpStatus::kDeadline:
      return "deadline";
  }
  return "unknown";
}

}  // namespace dpm::lp
