#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dpm::lp {

namespace {

// Dense two-phase tableau.  Sized for the MDP balance-equation LPs this
// library produces (a few hundred rows, a few thousand columns).
// Constraint coefficients live in rows_; right-hand sides in rhs_; the
// two reduced-cost rows carry their (negated) objective value in
// obj*_rhs_.
class Tableau {
 public:
  Tableau(const LpProblem& p, const SimplexOptions& opt) : opt_(opt) {
    const std::size_t m = p.num_constraints();
    n_orig_ = p.num_variables();

    // Column layout: [original | slack/surplus | artificial].
    std::size_t n_slack = 0;
    for (const auto& c : p.constraints()) {
      if (c.sense != Sense::kEq) ++n_slack;
    }
    const std::size_t n_max = n_orig_ + n_slack + m;  // worst case
    rows_.assign(m, linalg::Vector(n_max, 0.0));
    rhs_.assign(m, 0.0);
    basis_.assign(m, kNoBasis);

    n_total_ = n_orig_ + n_slack;
    std::size_t next_slack = n_orig_;
    for (std::size_t i = 0; i < m; ++i) {
      const Constraint& c = p.constraints()[i];
      linalg::Vector& row = rows_[i];
      for (const auto& [col, coeff] : c.terms) row[col] = coeff;
      rhs_[i] = c.rhs;
      double slack_coeff = 0.0;
      std::size_t slack_col = kNoBasis;
      if (c.sense == Sense::kLe) {
        slack_coeff = 1.0;
        slack_col = next_slack++;
      } else if (c.sense == Sense::kGe) {
        slack_coeff = -1.0;
        slack_col = next_slack++;
      }
      if (slack_col != kNoBasis) row[slack_col] = slack_coeff;

      if (rhs_[i] < 0.0) {
        // Only [0, n_total_) can be populated at this point; the
        // artificial tail is still all-zero.
        for (std::size_t j = 0; j < n_total_; ++j) row[j] = -row[j];
        rhs_[i] = -rhs_[i];
        slack_coeff = -slack_coeff;
      }
      if (slack_coeff == 1.0) {
        basis_[i] = slack_col;  // slack serves as the initial basic var
      }
    }
    // Add artificials where no slack could enter the basis.
    first_artificial_ = n_total_;
    for (std::size_t i = 0; i < m; ++i) {
      if (basis_[i] == kNoBasis) {
        const std::size_t art = n_total_++;
        rows_[i][art] = 1.0;
        basis_[i] = art;
      }
    }

    // Phase-2 reduced costs start as the raw costs (initial basis has
    // zero cost in the true objective).
    obj2_.assign(n_max, 0.0);
    for (std::size_t j = 0; j < n_orig_; ++j) obj2_[j] = p.costs()[j];
    obj2_rhs_ = 0.0;

    // Phase-1 objective: sum of artificials; express in terms of the
    // nonbasic columns by subtracting the rows whose basic variable is
    // artificial.
    obj1_.assign(n_max, 0.0);
    for (std::size_t j = first_artificial_; j < n_total_; ++j) obj1_[j] = 1.0;
    obj1_rhs_ = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (basis_[i] >= first_artificial_) {
        for (std::size_t j = 0; j < n_total_; ++j) obj1_[j] -= rows_[i][j];
        obj1_rhs_ -= rhs_[i];
      }
    }
  }

  LpSolution run(const LpProblem& p) {
    LpSolution sol;

    if (first_artificial_ < n_total_) {
      const PhaseResult r1 =
          optimize(obj1_, obj1_rhs_, /*block_artificials=*/false);
      sol.iterations += r1.iterations;
      if (r1.status == LpStatus::kIterationLimit) {
        sol.status = r1.status;
        return sol;
      }
      // Phase-1 optimum is -obj1_rhs_; feasible iff it is ~0.
      if (-obj1_rhs_ > opt_.feas_tol) {
        sol.status = LpStatus::kInfeasible;
        return sol;
      }
      drive_out_artificials();
    }

    const PhaseResult r2 =
        optimize(obj2_, obj2_rhs_, /*block_artificials=*/true);
    sol.iterations += r2.iterations;
    sol.status = r2.status;
    if (r2.status != LpStatus::kOptimal) return sol;

    sol.x.assign(n_orig_, 0.0);
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (basis_[i] < n_orig_) sol.x[basis_[i]] = rhs_[i];
    }
    // Clip the tiny negatives that tableau arithmetic can leave behind.
    for (double& v : sol.x) {
      if (v < 0.0 && v > -opt_.feas_tol) v = 0.0;
    }
    sol.objective = p.objective(sol.x);
    return sol;
  }

 private:
  static constexpr std::size_t kNoBasis =
      std::numeric_limits<std::size_t>::max();

  struct PhaseResult {
    LpStatus status;
    std::size_t iterations;
  };

  bool column_usable(std::size_t j, bool block_artificials) const {
    return !(block_artificials && j >= first_artificial_);
  }

  // Primal simplex on the current tableau minimizing the objective whose
  // reduced-cost row is `obj` (updated in place; `obj_rhs` carries the
  // negated objective value).  Dantzig pricing until the objective
  // stalls, then Bland's rule (anti-cycling).
  PhaseResult optimize(linalg::Vector& obj, double& obj_rhs,
                       bool block_artificials) {
    std::size_t iters = 0;
    std::size_t stall = 0;
    bool bland = false;
    double best = std::numeric_limits<double>::infinity();

    while (iters < opt_.max_iterations) {
      // --- entering column ---
      std::size_t enter = kNoBasis;
      double most_negative = -opt_.reduced_cost_tol;
      for (std::size_t j = 0; j < n_total_; ++j) {
        if (!column_usable(j, block_artificials)) continue;
        const double rc = obj[j];
        if (bland) {
          if (rc < -opt_.reduced_cost_tol) {
            enter = j;
            break;
          }
        } else if (rc < most_negative) {
          most_negative = rc;
          enter = j;
        }
      }
      if (enter == kNoBasis) {
        return {LpStatus::kOptimal, iters};
      }

      // --- ratio test ---
      // Two passes: find the minimum ratio, then among the (near-)tied
      // rows pick the numerically safest pivot (largest |element|) in
      // Dantzig mode, or the lowest basis index in Bland mode
      // (anti-cycling requires the index rule).
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < rows_.size(); ++i) {
        const double a = rows_[i][enter];
        if (a <= opt_.pivot_tol) continue;
        best_ratio = std::min(best_ratio, rhs_[i] / a);
      }
      if (best_ratio == std::numeric_limits<double>::infinity()) {
        return {LpStatus::kUnbounded, iters};
      }
      std::size_t leave = kNoBasis;
      double best_pivot = 0.0;
      const double ratio_cut = best_ratio + 1e-9 * (1.0 + std::abs(best_ratio));
      for (std::size_t i = 0; i < rows_.size(); ++i) {
        const double a = rows_[i][enter];
        if (a <= opt_.pivot_tol) continue;
        if (rhs_[i] / a > ratio_cut) continue;
        if (bland) {
          if (leave == kNoBasis || basis_[i] < basis_[leave]) leave = i;
        } else if (a > best_pivot) {
          best_pivot = a;
          leave = i;
        }
      }

      pivot(leave, enter, obj, obj_rhs);
      ++iters;

      const double cur = -obj_rhs;
      if (cur < best - 1e-12) {
        best = cur;
        stall = 0;
      } else if (++stall >= (bland ? opt_.bland_stall_abort
                                   : opt_.stall_limit)) {
        if (bland) {
          return {LpStatus::kIterationLimit, iters};
        }
        bland = true;
        stall = 0;
      }
    }
    return {LpStatus::kIterationLimit, iters};
  }

  void pivot(std::size_t leave, std::size_t enter, linalg::Vector& obj,
             double& obj_rhs) {
    linalg::Vector& prow = rows_[leave];
    const double inv = 1.0 / prow[enter];
    // Live columns only: [n_total_, n_max) stays zero for the whole
    // solve, so scaling it is pure waste (the allocation is worst-case
    // sized for artificials that may never be created).
    for (std::size_t j = 0; j < n_total_; ++j) prow[j] *= inv;
    rhs_[leave] *= inv;
    prow[enter] = 1.0;  // kill roundoff on the pivot element itself

    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i == leave) continue;
      eliminate(rows_[i], rhs_[i], prow, rhs_[leave], enter);
    }
    eliminate(obj, obj_rhs, prow, rhs_[leave], enter);
    // Keep the *other* objective row consistent too so phase transitions
    // are free.
    if (&obj == &obj1_) {
      eliminate(obj2_, obj2_rhs_, prow, rhs_[leave], enter);
    } else {
      eliminate(obj1_, obj1_rhs_, prow, rhs_[leave], enter);
    }

    basis_[leave] = enter;
  }

  void eliminate(linalg::Vector& row, double& row_rhs,
                 const linalg::Vector& prow, double prow_rhs,
                 std::size_t enter) const {
    const double f = row[enter];
    if (f == 0.0) return;
    for (std::size_t j = 0; j < n_total_; ++j) row[j] -= f * prow[j];
    row_rhs -= f * prow_rhs;
    row[enter] = 0.0;
  }

  // After phase 1, replace basic artificials with structural columns
  // where possible; rows that admit none are redundant and harmless
  // (their artificial stays basic at value zero, and phase 2 blocks
  // artificial columns from entering).
  void drive_out_artificials() {
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (basis_[i] < first_artificial_) continue;
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (std::abs(rows_[i][j]) > opt_.pivot_tol) {
          pivot(i, j, obj1_, obj1_rhs_);
          break;
        }
      }
    }
  }

  SimplexOptions opt_;
  std::size_t n_orig_ = 0;
  std::size_t n_total_ = 0;
  std::size_t first_artificial_ = 0;
  std::vector<linalg::Vector> rows_;  // constraint coefficients
  linalg::Vector rhs_;                // right-hand sides (kept >= 0)
  linalg::Vector obj1_, obj2_;        // reduced-cost rows (phase 1 / 2)
  double obj1_rhs_ = 0.0, obj2_rhs_ = 0.0;
  std::vector<std::size_t> basis_;
};

}  // namespace

LpSolution solve_simplex(const LpProblem& problem,
                         const SimplexOptions& options) {
  if (problem.num_variables() == 0) {
    throw LpError("simplex: problem has no variables");
  }
  if (problem.has_finite_upper_bounds()) {
    // The tableau has no native bound handling; solve the explicit-row
    // reformulation (same variables, same objective).
    return solve_simplex(bounds_as_rows(problem), options);
  }
  {
    Tableau t(problem, options);
    LpSolution sol = t.run(problem);
    if (sol.status != LpStatus::kIterationLimit) return sol;
  }
  // Degeneracy stall: retry on perturbed copies with growing epsilon.
  LpSolution last;
  for (const double eps : {1e-11, 1e-9, 1e-7}) {
    const LpProblem p = perturbed_copy(problem, eps);
    Tableau t(p, options);
    last = t.run(p);
    if (last.status != LpStatus::kIterationLimit) {
      if (last.status == LpStatus::kOptimal) {
        last.objective = problem.objective(last.x);
      }
      return last;
    }
  }
  return last;
}

}  // namespace dpm::lp
