// Two-phase dense primal simplex.
//
// Default exact solver for the policy-optimization LPs.  Phase 1
// minimizes the sum of artificial variables to find a basic feasible
// point; phase 2 optimizes the true objective.  Dantzig pricing with an
// automatic switch to Bland's rule when the objective stalls guarantees
// termination on the (often degenerate) balance-equation LPs produced by
// discounted MDPs.
#pragma once

#include "lp/problem.h"

namespace dpm::lp {

struct SimplexOptions {
  std::size_t max_iterations = 20000;
  double pivot_tol = 1e-8;       // reject smaller pivot elements
  double reduced_cost_tol = 1e-9;
  double feas_tol = 1e-7;        // phase-1 residual accepted as feasible
  /// Switch from Dantzig pricing to Bland's rule after this many
  /// iterations without objective improvement (anti-cycling).
  std::size_t stall_limit = 64;
  /// Give up (and let the caller retry on a perturbed copy) after this
  /// many non-improving iterations in Bland mode — far cheaper than
  /// grinding a degenerate basis to the full iteration budget.
  std::size_t bland_stall_abort = 2000;
};

/// Solves `problem` with the two-phase simplex method.
LpSolution solve_simplex(const LpProblem& problem,
                         const SimplexOptions& options = {});

}  // namespace dpm::lp
