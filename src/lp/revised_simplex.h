// Sparse revised simplex (two-phase primal, plus dual-simplex restarts).
//
// Operates on the LpProblem's CSC columns directly: each iteration costs
// two triangular solves against an LU-factorized basis (eta-updated
// between periodic refactorizations) plus one sparse pricing pass —
// instead of the dense tableau's O(rows x columns) pivot.  This is the
// backend of choice for the MDP balance-equation LPs, whose columns have
// only a handful of nonzeros (one outgoing-flow term plus the few
// reachable successor states).
//
// Warm starts: the optimal basis of a solved instance can be fed back to
// solve a neighboring instance (same matrix and senses, different rhs).
// If the basis is still primal feasible it is re-priced in place; if the
// rhs change made it primal infeasible, the dual simplex drives it back
// in a handful of pivots — the engine behind PolicyOptimizer::sweep().
#pragma once

#include <vector>

#include "lp/problem.h"

namespace dpm::lp {

struct RevisedSimplexOptions {
  std::size_t max_iterations = 20000;
  double pivot_tol = 1e-8;        // reject smaller ratio-test pivots
  double reduced_cost_tol = 1e-9;
  double feas_tol = 1e-7;         // phase-1 residual accepted as feasible
  /// Refactorize the basis after this many eta updates.  128 balances
  /// the O(fill) cost of a fresh factorization against the growing eta
  /// file (measured sweet spot on the n*na = 8000 synthetic MDPs).
  std::size_t refactor_interval = 128;
  enum class Pricing {
    kDantzig,       // most negative reduced cost
    kSteepestEdge,  // Devex-style reference weights ("steepest-edge lite")
  };
  /// Dantzig default: on the balance-equation LPs the Devex weights
  /// rarely cut enough pivots to pay for their extra btran per
  /// iteration; switch to kSteepestEdge for LPs with long degenerate
  /// plateaus.
  Pricing pricing = Pricing::kDantzig;
  /// Switch to Bland's rule after this many non-improving iterations.
  std::size_t stall_limit = 64;
  /// Abort (caller retries perturbed) after this many non-improving
  /// Bland iterations.
  std::size_t bland_stall_abort = 2000;
  /// Cap on dual-simplex pivots in a warm start before falling back to a
  /// cold solve (warm starts are only worth it when they are short).
  std::size_t max_dual_iterations = 1000;
};

/// Opaque warm-start handle: the basic column set over the solver's
/// internal standard form.  Only valid for problems with the same
/// constraint matrix, senses, and variable count (rhs may differ).
struct SimplexBasis {
  std::vector<std::size_t> basic;  // one standard-form column per row
  bool empty() const noexcept { return basic.empty(); }
};

/// Solves `problem` with the sparse revised simplex.
///
/// `warm` (optional) restarts from a previous basis; `basis_out`
/// (optional) receives the final basis on optimal termination.  Both may
/// be null; passing an incompatible warm basis silently falls back to a
/// cold solve.
LpSolution solve_revised_simplex(const LpProblem& problem,
                                 const RevisedSimplexOptions& options = {},
                                 const SimplexBasis* warm = nullptr,
                                 SimplexBasis* basis_out = nullptr);

}  // namespace dpm::lp
