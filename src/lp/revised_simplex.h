// Sparse revised simplex (two-phase primal, plus a boxed dual simplex).
//
// Operates on the LpProblem's CSC columns directly: each iteration costs
// two triangular solves against an LU-factorized basis (right-looking
// Markowitz LU, Forrest–Tomlin-updated between stability- or
// fill-triggered refactorizations) plus one pricing pass — instead of
// the dense tableau's O(rows x columns) pivot.  This is the backend of
// choice for the MDP balance-equation LPs, whose columns have only a
// handful of nonzeros (one outgoing-flow term plus the few reachable
// successor states).
//
// Bounded variables: 0 <= x_j <= u_j is handled natively — nonbasic
// columns rest at either bound, the ratio test is two-sided, and a step
// limited by the entering variable's own bound becomes a bound *flip*
// (no basis change, no factorization update).  Singleton rows
// (a * x_j <= b and friends) are absorbed into the bound set during
// setup, shrinking the basis instead of wasting a row on them.
//
// Warm starts: the optimal basis of a solved instance can be fed back to
// solve a neighboring instance (same matrix and senses; rhs *and*
// variable bounds may differ).  If the basis is still primal feasible it
// is re-priced in place; if the change made it primal infeasible, the
// boxed dual simplex drives it back in a handful of pivots — bound
// tightening and rhs moves alike, the engine behind
// PolicyOptimizer::sweep().
#pragma once

#include <cstdint>
#include <vector>

#include "lp/problem.h"

namespace dpm::lp {

/// Per-solve instrumentation (optional; see RevisedSimplexOptions::stats).
/// The cost identity benches rely on:
///   solve_ms ~= sweep_ms (triangular solves) + update_ms (FT updates)
///             + refactor_ms (from-scratch LU) + pricing & ratio tests.
struct SimplexStats {
  std::size_t refactorizations = 0;  // from-scratch LU factorizations
  double refactor_ms = 0.0;          // wall time inside those
  std::size_t ft_updates = 0;        // successful Forrest-Tomlin updates
  double update_ms = 0.0;            // wall time inside factor updates
  double sweep_ms = 0.0;             // wall time in ftran/btran sweeps
  double solve_ms = 0.0;             // wall time of the whole solve
  std::size_t iterations = 0;        // pivots + bound flips
  std::size_t bound_flips = 0;       // iterations that were pure flips
  std::size_t dual_iterations = 0;   // pivots spent in the dual phase
  std::size_t factor_nonzeros = 0;   // nnz(L+U) of the last factorization
  // Hypersparsity telemetry (see BasisFactorization): triangular sweeps
  // that stayed on the Gilbert–Peierls sparse path vs sweeps that ran
  // (or fell back to) the dense scan, and total vector entries touched
  // (a dense sweep counts the full dimension m).
  std::uint64_t sparse_sweeps = 0;
  std::uint64_t dense_sweeps = 0;
  std::uint64_t touched_entries = 0;
  // Dense-block telemetry: sweeps whose tail segment ran through the
  // contiguous DenseBlock kernels, and the block nonzeros those sweeps
  // processed (counted separately from touched_entries, which accrues
  // the basis dimension per dense sweep — block_entries is the actual
  // dense-tail arithmetic volume).
  std::uint64_t block_sweeps = 0;
  std::uint64_t block_entries = 0;
  // Presolve reductions applied before the simplex saw the problem.
  std::size_t presolve_rows_removed = 0;
  std::size_t presolve_cols_removed = 0;
  // Crash-basis telemetry: whether a crash seed survived installation
  // (nonsingular, adopted), and how many crash-seeded structural
  // columns were still basic at optimality — each one is a column the
  // simplex never had to price in, a deterministic proxy for pivots
  // the seed saved versus the all-logical cold start.
  bool crash_basis_used = false;
  std::size_t crash_pivots_saved = 0;
};

/// Process-wide hypersparsity odometer, aggregated across every
/// solve_revised_simplex call since process start (thread-safe,
/// monotone — same contract as pivots_executed()).  verify.sh's
/// perf-smoke gate reads it to assert the sparse path stays the common
/// case on the case-study scenarios.
struct SweepTelemetry {
  std::uint64_t sparse_sweeps = 0;
  std::uint64_t dense_sweeps = 0;
  std::uint64_t touched_entries = 0;
  std::uint64_t block_sweeps = 0;   // sweeps routed through the dense block
  std::uint64_t block_entries = 0;  // block nonzeros those sweeps processed
};
SweepTelemetry sweep_telemetry() noexcept;

struct RevisedSimplexOptions {
  std::size_t max_iterations = 20000;
  double pivot_tol = 1e-8;        // reject smaller ratio-test pivots
  double reduced_cost_tol = 1e-9;
  double feas_tol = 1e-7;         // phase-1 residual accepted as feasible
  /// Hard cap on Forrest-Tomlin updates between refactorizations.  The
  /// effective trigger is usually the amortized rule in
  /// BasisFactorization (extra sweep work since the last
  /// refactorization exceeds `refactor_work_ratio` times that
  /// refactorization's measured work), which self-balances cheap
  /// factorizations against heavily filling ones; this cap only bounds
  /// numerical drift on extreme instances.
  std::size_t refactor_interval = 1024;
  /// Amortized refactorization threshold (see
  /// BasisFactorization::needs_refactor): refactorize once the update
  /// transforms have cost `refactor_work_ratio` times as much extra
  /// sweep work as rebuilding would.  1.0 is the classic
  /// pay-as-much-as-a-rebuild balance; <= 0 falls back to the fixed
  /// interval alone.  The eta-file design used a fill ratio instead
  /// (eta nonzeros vs factor nonzeros) because it could not price a
  /// rebuild — the work-based rule both refactorizes ~3x less often on
  /// cheap bases and keeps sweeps near fresh-factor cost on heavy
  /// ones.
  double refactor_work_ratio = 1.0;
  enum class Pricing {
    kDantzig,       // most negative reduced cost, full scan
    kPartial,       // Dantzig over rotating sections (partial pricing)
    kPartialDevex,  // Devex weights over rotating sections
    kSteepestEdge,  // Devex reference weights, full scan
  };
  /// Partial pricing default: a full scan touches every column's sparse
  /// dot product per iteration, which dominates once columns outnumber
  /// rows; scanning a rotating section finds an entering column of
  /// almost the same quality at a fraction of the cost.  kPartialDevex
  /// fuses the two orthogonal ideas: the *section* bounds how many
  /// columns an iteration prices, the *Devex reference weights* rank
  /// the candidates within it by estimated edge steepness rather than
  /// raw reduced cost (weight updates are likewise restricted to the
  /// scanned section, so their cost stays proportional to the scan).
  Pricing pricing = Pricing::kPartial;
  /// Columns per partial-pricing section; 0 picks a size proportional
  /// to sqrt(#columns) (at least 256).
  std::size_t partial_section = 0;
  /// Absorb singleton constraint rows (one structural term) into the
  /// variable bound set instead of keeping them as basis rows.
  bool absorb_singleton_rows = true;
  /// Run the structural presolve (src/lp/presolve.h) before cold
  /// solves: empty/singleton/redundant/forcing rows and
  /// fixed/empty/dominated/duplicate columns are eliminated, the
  /// reduced problem is solved, and postsolve restores the full
  /// primal/dual solution plus a warm-startable basis.  Warm starts
  /// always bypass it (the supplied basis spans the full problem).
  bool presolve = true;
  /// Switch to Bland's rule after this many non-improving iterations.
  std::size_t stall_limit = 64;
  /// Abort (caller retries perturbed) after this many non-improving
  /// Bland iterations.
  std::size_t bland_stall_abort = 2000;
  /// Cap on dual-simplex pivots in a warm start before falling back to a
  /// cold solve (warm starts are only worth it when they are short).
  std::size_t max_dual_iterations = 1000;
  /// Optional instrumentation sink (bench harnesses); reset and filled
  /// by solve_revised_simplex when non-null.
  SimplexStats* stats = nullptr;
  /// Optional crash basis: for each *original* constraint row, the
  /// structural column to seed basic (any value >= num_variables means
  /// "no seed; complete with a slack or artificial").  The MDP
  /// optimizer derives these from a few policy-iteration steps — the
  /// occupation-measure columns of the greedy deterministic policy form
  /// a nonsingular (I - gamma P)^T sub-basis over the balance rows.  A
  /// crash solve bypasses presolve (like a warm start, the seed spans
  /// the full problem); a singular or malformed seed falls back to the
  /// ordinary cold start.  Ignored when a warm basis is supplied.
  const std::vector<std::size_t>* crash_columns = nullptr;
};

/// Opaque warm-start handle: the basic column set over the solver's
/// internal standard form, plus the bound status of every nonbasic
/// column (which bound it rests at).  Only valid for problems with the
/// same constraint matrix, senses, and variable count; rhs and variable
/// bounds may differ — the boxed dual simplex repairs the primal
/// infeasibility either change introduces.
struct SimplexBasis {
  std::vector<std::size_t> basic;  // one standard-form column per row
  std::vector<char> at_upper;      // per standard-form column bound flag
  bool empty() const noexcept { return basic.empty(); }
};

/// Solves `problem` with the sparse revised simplex.
///
/// `warm` (optional) restarts from a previous basis; `basis_out`
/// (optional) receives the final basis on optimal termination.  Both may
/// be null; passing an incompatible warm basis silently falls back to a
/// cold solve.
LpSolution solve_revised_simplex(const LpProblem& problem,
                                 const RevisedSimplexOptions& options = {},
                                 const SimplexBasis* warm = nullptr,
                                 SimplexBasis* basis_out = nullptr);

/// Process-wide pivot odometer: total iterations (pivots + bound flips)
/// executed by every solve_revised_simplex call since process start.
/// Monotone and thread-safe; read it before and after an operation to
/// measure the simplex work it triggered.  The scenario result cache's
/// round-trip test uses it to prove a cache replay ran zero pivots.
std::uint64_t pivots_executed() noexcept;

}  // namespace dpm::lp
