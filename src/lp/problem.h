// Linear-program model.
//
// The policy-optimization LPs of the paper (Appendix A: LP2/LP3/LP4) are
// built through this interface:   min c^T x  s.t.  rows {=, <=, >=} rhs,
// x >= 0.  Rows are stored sparsely; solvers densify as needed.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/sparse.h"
#include "sim/hash.h"

namespace dpm::lp {

/// Thrown on malformed models (bad indices, empty problems, ...).
class LpError : public std::runtime_error {
 public:
  explicit LpError(const std::string& what) : std::runtime_error(what) {}
};

enum class Sense { kEq, kLe, kGe };

/// One linear constraint: sum(coeff_i * x_{col_i})  sense  rhs.
struct Constraint {
  std::vector<std::pair<std::size_t, double>> terms;
  Sense sense = Sense::kEq;
  double rhs = 0.0;
  std::string name;
};

/// Minimization LP over nonnegative variables, optionally box-bounded:
/// 0 <= x_j <= u_j with u_j = +inf by default.
///
/// Invariant: every constraint term references an existing variable;
/// every upper bound is nonnegative.
class LpProblem {
 public:
  /// Adds a variable with the given objective coefficient; returns its
  /// column index.
  std::size_t add_variable(double cost, std::string name = {});

  /// Caps variable `j` at `upper` (>= 0; +inf restores the default).
  /// The revised simplex handles finite bounds natively (nonbasic-at-
  /// bound states and bound flips — no extra row); the dense tableau and
  /// interior-point backends solve the `bounds_as_rows` reformulation.
  void set_upper_bound(std::size_t j, double upper);

  const linalg::Vector& upper_bounds() const noexcept { return upper_; }
  /// True when any variable carries a finite upper bound.
  bool has_finite_upper_bounds() const noexcept;

  /// Adds a constraint; all term column indices must already exist.
  /// Duplicate columns within one constraint are summed.
  void add_constraint(Constraint c);

  /// Replaces the right-hand side of constraint `row` (bounds sweeps:
  /// the matrix and senses stay fixed, so a solver basis from the
  /// previous rhs remains structurally valid and can warm-start).
  void set_rhs(std::size_t row, double rhs);

  /// Convenience for dense rows (size must equal num_variables()).
  void add_dense_constraint(const linalg::Vector& row, Sense sense, double rhs,
                            std::string name = {});

  std::size_t num_variables() const noexcept { return costs_.size(); }
  std::size_t num_constraints() const noexcept { return constraints_.size(); }

  const linalg::Vector& costs() const noexcept { return costs_; }
  const std::vector<Constraint>& constraints() const noexcept {
    return constraints_;
  }
  const std::string& variable_name(std::size_t j) const {
    return names_.at(j);
  }

  /// Constraint matrix as CSC columns (num_constraints x num_variables)
  /// — no densification; the revised simplex backend consumes this
  /// directly.
  linalg::SparseMatrixCsc constraint_csc() const;

  /// Objective value of a given point (no feasibility check).
  double objective(const linalg::Vector& x) const;

  /// Max constraint violation of a point (equality residual or one-sided
  /// surplus), useful for tests and post-solve verification.
  double max_violation(const linalg::Vector& x) const;

  /// Streams the LP's canonical content into `h`: costs, upper bounds,
  /// and every constraint's terms/sense/rhs.  Variable and constraint
  /// names are cosmetic and excluded; duplicate in-constraint columns
  /// were summed at add_constraint time, so structurally equal problems
  /// hash equal regardless of how their terms were assembled.
  void hash_into(sim::Fnv1a& h) const;

 private:
  linalg::Vector costs_;
  linalg::Vector upper_;  // per-variable upper bound, +inf by default
  std::vector<std::string> names_;
  std::vector<Constraint> constraints_;
};

/// Reformulates finite upper bounds as explicit `x_j <= u_j` rows and
/// clears the bound vector — the reference formulation for backends
/// without native bound handling, and the comparison target of the
/// bounded-variable tests.
LpProblem bounds_as_rows(const LpProblem& problem);

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  /// The solver hit a numerical wall it could not pivot through:
  /// singular refactorization, non-finite values mid-solve, or an IPM
  /// Cholesky breakdown.  Deliberately distinct from kIterationLimit
  /// (which the revised simplex remedies with perturbed retries):
  /// numerical failures are handed to robust::SolveSupervisor, whose
  /// escalation ladder retries the *exact* problem colder instead of a
  /// perturbed one, so recovered objectives stay bit-identical.
  kNumericalFailure,
  /// The cooperative per-unit wall-clock deadline expired mid-solve
  /// (robust::deadline_expired(), polled in the pivot loops).  Never
  /// retried internally — the partial work is abandoned and the caller
  /// (scenario runner / supervisor) decides whether to re-attempt.
  kDeadline,
};

const char* to_string(LpStatus s) noexcept;

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  linalg::Vector x;        // primal point (original variables)
  double objective = 0.0;  // c^T x
  std::size_t iterations = 0;
  /// Constraint shadow prices (one per original constraint row), filled
  /// by the revised-simplex backend on optimal termination: y_i is
  /// dObjective/drhs_i at the final basis (<= 0 for binding `<=` rows of
  /// a minimization, >= 0 for `>=`, free for `=`; 0 for slack rows).
  /// Rows the solver absorbed into the bound set report 0 — run the
  /// presolve path (cold solves do by default) for exact bound-row
  /// multipliers.  Other backends leave this empty.
  linalg::Vector duals;
  /// Machine-readable failure note, empty on success.  Set alongside the
  /// failure statuses so robust::SolveSupervisor can type the failure
  /// without parsing exception text: "singular-refactorization",
  /// "nonfinite-values", "cholesky-breakdown", "deadline".
  const char* note = nullptr;
};

/// Deterministically perturbed copy: rhs_i += eps * (i+1) * scale / m,
/// with scale = max |rhs|.  The classical anti-cycling remedy both
/// simplex backends retry with when a heavily degenerate basis stalls
/// (policy LPs are degenerate by construction: most initial-distribution
/// entries are zero).  Objectives move by O(eps * m * horizon), far
/// below any quantity the library reports.
LpProblem perturbed_copy(const LpProblem& problem, double eps);

}  // namespace dpm::lp
