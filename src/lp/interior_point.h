// Mehrotra predictor-corrector primal-dual interior-point method.
//
// The paper's tool is built around PCx, an interior-point LP solver
// [Czyzyk/Mehrotra/Wright].  This is a from-scratch dense implementation
// of the same algorithm class, used to cross-validate the simplex solver
// and to reproduce the paper's "interior point algorithms solve very
// large LP instances efficiently" claim on our problem sizes.
#pragma once

#include "lp/problem.h"

namespace dpm::lp {

struct InteriorPointOptions {
  std::size_t max_iterations = 200;
  double tolerance = 1e-8;      // relative duality gap + residual target
  double step_scale = 0.99995;  // fraction of the max step to the boundary
  /// This implementation is dense (normal equations via Cholesky):
  /// above this many columns it logs a note to stderr and delegates to
  /// the sparse revised simplex instead of silently taking minutes.
  /// 0 disables the guard.
  std::size_t dense_column_limit = 4000;
};

/// Solves `problem` with Mehrotra's predictor-corrector method.
///
/// Returns kIterationLimit when convergence is not reached; the caller
/// (or tests) should treat that as "use the simplex answer".  Primal
/// infeasibility manifests as non-convergence; this solver is intended
/// for feasible, bounded instances (which all well-posed policy LPs are).
LpSolution solve_interior_point(const LpProblem& problem,
                                const InteriorPointOptions& options = {});

}  // namespace dpm::lp
