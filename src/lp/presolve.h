// Structural LP presolve + exact postsolve.
//
// Reduces an LpProblem before the revised simplex sees it, to a
// fixpoint of the classic cheap rules:
//
//   rows     empty rows (feasibility check, then drop), singleton rows
//            (fold `a x_j <= b` and friends into the bound set; fix the
//            variable outright for `a x_j = b`), redundant rows (the
//            activity interval [Lmin, Lmax] implied by the bounds
//            already satisfies the row), forcing rows (Lmin or Lmax
//            exactly attains the rhs, pinning every variable in the row
//            at the attaining bound)
//   columns  empty columns (fix at the cost-preferred bound), fixed
//            variables (zero-width boxes, substituted into the rhs),
//            dominated columns (a duplicate with lower cost and no
//            upper bound caps the pricier copy at zero), duplicate
//            columns (equal column, equal cost: merge, upper bounds
//            add)
//
// Free-variable substitution does not arise in this library: the model
// form is 0 <= x <= u by construction (problem.h), so no variable is
// free.  The engine-level singleton absorption in RevisedSimplex covers
// warm starts, where this problem-level pass is skipped to keep basis
// dimensions compatible.
//
// Postsolve replays the reduction stack in reverse and restores the
// *full* certificate, not just the objective:
//   - primal: fixed variables take their values, merged duplicate mass
//     is split greedily within the member bounds;
//   - dual: removed rows get exact multipliers reconstructed from
//     reduced costs (zero for slack rows, rc_j / a_ij for a binding
//     singleton bound, an admissible-interval pick for forcing rows),
//     so complementary slackness and strong duality hold on the
//     original problem;
//   - basis: the reduced optimal basis maps onto the original problem's
//     standard form (removed inequality rows re-enter with their slack
//     basic, removed equality rows with a degenerate artificial), ready
//     to warm-start the unreduced problem.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/problem.h"
#include "lp/revised_simplex.h"

namespace dpm::lp {

enum class PresolveStatus {
  kUnchanged,   // nothing removed; solve the original problem directly
  kReduced,     // reduced() is strictly smaller; postsolve() maps back
  kEmpty,       // every row and column eliminated; postsolve({}) is the
                // complete solution
  kInfeasible,  // reduction proved the problem infeasible
  kUnbounded,   // reduction proved it unbounded (a constraint-free
                // negative-cost ray survived every row)
};

class Presolve {
 public:
  /// Runs the reduction rules to a fixpoint.  `feas_tol` mirrors the
  /// simplex feasibility tolerance (bound/rhs comparisons).
  PresolveStatus reduce(const LpProblem& problem, double feas_tol = 1e-7);

  /// The reduced problem (valid after reduce() returned kReduced).
  const LpProblem& reduced() const noexcept { return reduced_; }

  std::size_t rows_removed() const noexcept { return rows_removed_; }
  std::size_t cols_removed() const noexcept { return cols_removed_; }

  /// Maps a solution of reduced() back onto the original problem
  /// (primal values, duals, objective; see file comment).  After
  /// kEmpty, pass a default-constructed LpSolution.
  ///
  /// `red_basis`/`basis_out` (both optional) additionally map the
  /// reduced final basis into the original problem's standard form;
  /// `absorb_singleton_rows` must match the option the original-problem
  /// engine will run with, so the row layouts line up.
  LpSolution postsolve(const LpSolution& red,
                       const SimplexBasis* red_basis = nullptr,
                       SimplexBasis* basis_out = nullptr,
                       bool absorb_singleton_rows = true) const;

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  struct Action {
    enum Kind {
      kRowRedundant,     // row i: never binding -> dual 0
      kRowSingletonUb,   // row i tightened upper bound of col to `value`
      kRowSingletonFix,  // equality singleton row i fixed col at `value`
      kRowForcing,       // row i pinned every member at a bound
      kColFixed,         // col fixed at `value` (empty/dominated/forced)
      kColDuplicate,     // col merged into `other` (equal column + cost)
    } kind;
    std::size_t row = kNone;
    std::size_t col = kNone;
    double coeff = 0.0;  // a_ij of the singleton / prior ub of `other`
    double value = 0.0;  // bound, fixed value, or the extra member's ub
    std::size_t other = kNone;
    std::vector<std::pair<std::size_t, char>> forced;  // (col, at_upper)
  };

  void fix_column(std::size_t j, double v, Action::Kind kind,
                  std::size_t row = kNone, double coeff = 0.0);
  void force_row(std::size_t i, bool at_min);
  bool row_pass();     // returns true when something changed
  bool column_pass();  // likewise; sets status_ on infeasibility
  void build_reduced();

  LpProblem orig_;
  LpProblem reduced_;
  double tol_ = 1e-7;
  PresolveStatus status_ = PresolveStatus::kUnchanged;

  std::vector<char> row_alive_, col_alive_;
  linalg::Vector rhs_;  // working rhs, updated as variables are fixed
  linalg::Vector ub_;   // working upper bounds (tightened)
  // Row- and column-wise views of the original nonzeros (coeff != 0).
  std::vector<std::vector<std::pair<std::size_t, double>>> rows_, cols_;

  std::vector<Action> stack_;
  std::vector<std::size_t> col_map_;      // orig col -> reduced col / kNone
  std::vector<std::size_t> row_map_;      // orig row -> reduced row / kNone
  std::size_t rows_removed_ = 0, cols_removed_ = 0;
};

}  // namespace dpm::lp
