// Solver facade: one entry point, selectable backend.
#pragma once

#include "lp/interior_point.h"
#include "lp/problem.h"
#include "lp/simplex.h"

namespace dpm::lp {

enum class Backend {
  kSimplex,       // exact vertex solutions (default)
  kInteriorPoint  // Mehrotra predictor-corrector (PCx-style)
};

/// Solves `problem` with the requested backend.
inline LpSolution solve(const LpProblem& problem,
                        Backend backend = Backend::kSimplex) {
  switch (backend) {
    case Backend::kInteriorPoint:
      return solve_interior_point(problem);
    case Backend::kSimplex:
      break;
  }
  return solve_simplex(problem);
}

}  // namespace dpm::lp
