// Solver facade: one entry point, selectable backend.
//
// See src/lp/README.md for the backend-selection and warm-start
// contract.
#pragma once

#include "lp/interior_point.h"
#include "lp/problem.h"
#include "lp/revised_simplex.h"
#include "lp/simplex.h"

namespace dpm::lp {

enum class Backend {
  kRevisedSimplex,  // sparse revised simplex (default for MDP LPs)
  kSimplex,         // dense two-phase tableau (small/teaching reference)
  kInteriorPoint    // Mehrotra predictor-corrector (PCx-style)
};

/// Solves `problem` with the requested backend.
inline LpSolution solve(const LpProblem& problem,
                        Backend backend = Backend::kRevisedSimplex) {
  switch (backend) {
    case Backend::kInteriorPoint:
      return solve_interior_point(problem);
    case Backend::kSimplex:
      return solve_simplex(problem);
    case Backend::kRevisedSimplex:
      break;
  }
  return solve_revised_simplex(problem);
}

}  // namespace dpm::lp
