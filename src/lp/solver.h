// Solver facade: one entry point, selectable backend.
//
// See src/lp/README.md for the backend-selection matrix, the pricing
// options, and the warm-start contract.
#pragma once

#include "lp/interior_point.h"
#include "lp/problem.h"
#include "lp/revised_simplex.h"
#include "lp/simplex.h"

namespace dpm::lp {

/// Which LP algorithm `solve()` dispatches to.
enum class Backend {
  /// Sparse revised simplex (the default, and the backend behind
  /// `PolicyOptimizer`): two-phase primal plus a boxed dual simplex,
  /// Forrest–Tomlin-updated Markowitz LU basis, partial/Devex pricing,
  /// native bounded variables, warm-startable via `SimplexBasis`.
  kRevisedSimplex,
  /// Dense two-phase tableau — the small, auditable reference
  /// implementation every other backend is tested against.
  kSimplex,
  /// Mehrotra predictor–corrector interior point (PCx-style, the
  /// method the paper's tool used) — cross-validation on feasible
  /// bounded instances; guarded above ~4000 columns, where it falls
  /// back to the revised simplex with a stderr note.
  kInteriorPoint
};

/// Solves `problem` with the requested backend.  All backends share the
/// `LpSolution`/`LpStatus` contract and agree on feasible bounded
/// instances to ~1e-6 (enforced by tests/test_lp_agreement.cpp); only
/// the revised simplex certifies infeasibility/unboundedness on every
/// instance class.  Callers that need warm starts, per-solve stats, or
/// non-default options use `solve_revised_simplex` directly.
inline LpSolution solve(const LpProblem& problem,
                        Backend backend = Backend::kRevisedSimplex) {
  switch (backend) {
    case Backend::kInteriorPoint:
      return solve_interior_point(problem);
    case Backend::kSimplex:
      return solve_simplex(problem);
    case Backend::kRevisedSimplex:
      break;
  }
  return solve_revised_simplex(problem);
}

}  // namespace dpm::lp
