// ExperimentRunner: executes scenario grids on a thread pool.
//
// The unit (scenario/scenario.h) is the scheduling quantum: workers
// pull units off a shared queue, so a 16-scenario run saturates every
// core while each warm-started sweep series stays sequential on one
// worker.  Determinism contract:
//  * every unit derives all randomness from (scenario name, unit
//    index) via sim::derive_seed — never from the worker thread;
//  * units buffer their output; the runner prints and serializes in
//    unit order after the barrier.
// Hence stdout tables and the emitted BENCH_<scenario>.json files are
// byte-identical for --jobs 1 and --jobs N (records carry wall_ms = 0;
// real wall times are reported on stdout only).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "robust/fault_injection.h"
#include "scenario/scenario.h"

namespace dpm::scenario {

struct RunnerOptions {
  std::size_t jobs = 1;       // worker threads (0 -> 1)
  bool smoke = false;         // reduced grids, short simulations
  bool print = true;          // banner + buffered unit tables on stdout
  bool write_json = true;     // one BENCH_<scenario>.json per scenario
  /// Content-addressed result cache (scenario/cache.h): look every
  /// unit's unit_key() up before executing it, replay hits
  /// bit-identically, store clean misses, and LRU-trim the store on
  /// flush.  Off by default — an explicit accelerator, not a default
  /// behavior change.
  bool cache = false;
  std::string cache_dir = ".scenario_cache";
  std::size_t cache_max_entries = 4096;
  /// Per-unit wall-clock deadline in milliseconds (0 = none).
  /// Cooperative: solvers poll robust::deadline_expired() at iteration
  /// boundaries, so an expired unit surfaces a structured kDeadline
  /// failure instead of being killed mid-write.
  double unit_deadline_ms = 0.0;
  /// Bounded retry-with-backoff: a unit whose attempt fails (shape
  /// failure, thrown exception, expired deadline) is re-run up to this
  /// many more times before its failure is reported.  The unit's fault
  /// scope is armed once, OUTSIDE the attempt loop, so a consumed
  /// single-shot injected fault stays consumed and the retry reproduces
  /// the fault-free output byte-for-byte.
  std::size_t unit_retries = 0;
  /// Sleep attempt*backoff ms between retry attempts (0 = immediate).
  double retry_backoff_ms = 0.0;
  /// Optional fault injection: each unit arms a FaultPlan derived from
  /// (site, scenario name, unit index) — deterministic regardless of
  /// --jobs, because plans are thread-local and derived from the unit's
  /// identity, never from the worker that happens to run it.
  std::optional<robust::FaultSpec> fault;
};

/// Structured record of a unit whose attempt(s) failed.  A failing unit
/// always yields one of these — never a crashed pool.
struct UnitFailure {
  std::string unit;          // unit label
  std::size_t index = 0;     // unit index within its scenario
  std::size_t attempts = 0;  // attempts executed (>= 1)
  bool recovered = false;    // a retry produced a clean result
  std::string detail;        // first attempt's first failure message
};

struct ScenarioRunResult {
  std::string name;
  std::size_t units = 0;
  std::size_t units_cached = 0;  // units replayed from the result cache
  std::size_t iterations = 0;  // sum of record iterations (pivots/slices)
  double wall_ms = 0.0;        // sum of unit wall times (real; 0 for
                               // cached units — nothing executed)
  std::vector<Record> records;            // unit order
  std::vector<std::string> failures;      // shape-assertion failures
  std::map<std::string, double> values;   // merged cross-unit facts
  /// One entry per unit whose first attempt failed (recovered or not),
  /// in unit order.  `failures` above stays the pass/fail signal:
  /// recovered units contribute here but not there.
  std::vector<UnitFailure> unit_failures;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(RunnerOptions options) : options_(options) {}

  /// Runs every scenario's units on the pool; returns per-scenario
  /// results in the given order.
  std::vector<ScenarioRunResult> run(
      const std::vector<const Scenario*>& scenarios) const;

  /// Convenience: run one scenario.
  ScenarioRunResult run_one(const Scenario& scenario) const;

 private:
  RunnerOptions options_;
};

}  // namespace dpm::scenario
