// ExperimentRunner: executes scenario grids on a thread pool.
//
// The unit (scenario/scenario.h) is the scheduling quantum: workers
// pull units off a shared queue, so a 16-scenario run saturates every
// core while each warm-started sweep series stays sequential on one
// worker.  Determinism contract:
//  * every unit derives all randomness from (scenario name, unit
//    index) via sim::derive_seed — never from the worker thread;
//  * units buffer their output; the runner prints and serializes in
//    unit order after the barrier.
// Hence stdout tables and the emitted BENCH_<scenario>.json files are
// byte-identical for --jobs 1 and --jobs N (records carry wall_ms = 0;
// real wall times are reported on stdout only).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "scenario/scenario.h"

namespace dpm::scenario {

struct RunnerOptions {
  std::size_t jobs = 1;       // worker threads (0 -> 1)
  bool smoke = false;         // reduced grids, short simulations
  bool print = true;          // banner + buffered unit tables on stdout
  bool write_json = true;     // one BENCH_<scenario>.json per scenario
  /// Content-addressed result cache (scenario/cache.h): look every
  /// unit's unit_key() up before executing it, replay hits
  /// bit-identically, store clean misses, and LRU-trim the store on
  /// flush.  Off by default — an explicit accelerator, not a default
  /// behavior change.
  bool cache = false;
  std::string cache_dir = ".scenario_cache";
  std::size_t cache_max_entries = 4096;
};

struct ScenarioRunResult {
  std::string name;
  std::size_t units = 0;
  std::size_t units_cached = 0;  // units replayed from the result cache
  std::size_t iterations = 0;  // sum of record iterations (pivots/slices)
  double wall_ms = 0.0;        // sum of unit wall times (real; 0 for
                               // cached units — nothing executed)
  std::vector<Record> records;            // unit order
  std::vector<std::string> failures;      // shape-assertion failures
  std::map<std::string, double> values;   // merged cross-unit facts
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(RunnerOptions options) : options_(options) {}

  /// Runs every scenario's units on the pool; returns per-scenario
  /// results in the given order.
  std::vector<ScenarioRunResult> run(
      const std::vector<const Scenario*>& scenarios) const;

  /// Convenience: run one scenario.
  ScenarioRunResult run_one(const Scenario& scenario) const;

 private:
  RunnerOptions options_;
};

}  // namespace dpm::scenario
