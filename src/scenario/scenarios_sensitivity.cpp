// Scenario registrations for the Appendix B sensitivity studies,
// Figs. 12-14: available sleep states, transition speed, SR burstiness,
// SR model memory, time horizon, and queue capacity.  Each grid cell
// builds its own model, so cells are independent point units and the
// runner parallelizes them freely.  Replaces bench_fig12a_sleepstates,
// bench_fig12b_transition, bench_fig13a_burstiness, bench_fig13b_memory,
// bench_fig14a_horizon, bench_fig14b_queue.
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

#include "cases/sensitivity.h"
#include "scenario/registry.h"
#include "trace/generators.h"
#include "trace/sr_extractor.h"

namespace dpm::scenario {

namespace {

namespace sens = cases::sensitivity;

std::string fmt(const char* pattern, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, pattern, v);
  return buf;
}

// ------------------------------------------------------------ Fig. 12a
Scenario make_fig12a() {
  Scenario sc;
  sc.name = "fig12a_sleepstates";
  sc.title = "Figure 12(a) (Appendix B)";
  sc.what =
      "power vs available sleep states, horizon 1e5 slices: "
      "deeper/more sleep states cut power with diminishing returns";

  sc.units = [](bool smoke) {
    struct Structure {
      const char* name;
      std::vector<std::size_t> pick;  // indices into standard_sleep_states
    };
    const std::vector<Structure> all_structures{
        {"{s1}", {0}},          {"{s4}", {3}},
        {"{s1,s2}", {0, 1}},    {"{s2,s3}", {1, 2}},
        {"{s1,s2,s3}", {0, 1, 2}}, {"{s1,s2,s3,s4}", {0, 1, 2, 3}},
    };
    const std::vector<Structure> structures =
        smoke ? std::vector<Structure>{all_structures[0], all_structures[1],
                                       all_structures[5]}
              : all_structures;

    std::vector<Unit> units;
    for (const Structure& st : structures) {
      for (const double q : {0.05, 0.5}) {
        PointSpec spec;
        spec.name = std::string(st.name) + (q < 0.1 ? " tight" : " loose");
        const std::vector<std::size_t> pick = st.pick;
        spec.model = [pick] {
          std::vector<sens::SleepStateSpec> specs;
          for (const std::size_t i : pick) {
            specs.push_back(sens::standard_sleep_states()[i]);
          }
          return sens::make_model(specs, 0.01, 2);
        };
        spec.config = [](const SystemModel& m) {
          return sens::make_config(m, 1e5);
        };
        spec.objective = [](const SystemModel& m) {
          return metrics::power(m);
        };
        spec.constraints = [q](const SystemModel& m) {
          return std::vector<OptimizationConstraint>{
              {metrics::queue_length(m), q, "performance"}};
        };
        spec.expect_feasible = true;
        units.push_back(point_unit(std::move(spec)));
      }
    }
    return units;
  };

  sc.check = [](ShapeChecker& c) {
    // Deeper/more sleep states reduce power; {s4} alone beats the
    // baseline {s1}; gains shrink when the constraint is tight.
    c.check(c.get("{s1,s2,s3,s4} loose/objective") <=
                c.get("{s1} loose/objective") + 1e-6,
            "adding sleep states should not cost power (loose)");
    c.check(c.get("{s4} loose/objective") <=
                c.get("{s1} loose/objective") + 1e-6,
            "the deep {s4} system should beat the baseline {s1} (loose)");
    const double gain_loose = c.get("{s1} loose/objective") -
                              c.get("{s1,s2,s3,s4} loose/objective");
    const double gain_tight = c.get("{s1} tight/objective") -
                              c.get("{s1,s2,s3,s4} tight/objective");
    c.check(gain_tight <= gain_loose + 1e-6,
            "deep sleep states should help less under the tight "
            "performance constraint");
  };
  return sc;
}

// ------------------------------------------------------------ Fig. 12b
Scenario make_fig12b() {
  Scenario sc;
  sc.name = "fig12b_transition";
  sc.title = "Figure 12(b) (Appendix B)";
  sc.what =
      "power vs SP transition speed (wake prob per slice), four series "
      "= sleep power {2W, 0W} x dominating constraint {loss, perf}; "
      "slow transitions make the sleep state unusable";

  sc.units = [](bool smoke) {
    const std::vector<double> all_probs{0.001, 0.003, 0.01, 0.03,
                                        0.1,   0.3,   1.0};
    const std::vector<double> probs =
        smoke ? std::vector<double>{0.001, 1.0} : all_probs;

    std::vector<Unit> units;
    for (const double sleep_power : {2.0, 0.0}) {
      for (const bool loss_constrained : {true, false}) {
        const std::string series =
            fmt("sleep%.0fW", sleep_power) +
            (loss_constrained ? " loss<=0.02" : " queue<=0.3");
        for (const double p : probs) {
          PointSpec spec;
          spec.name = series + " wake=" + fmt("%g", p);
          // The loss-dominated series uses a shorter-burst workload and
          // a deeper queue (flip 0.05, capacity 4): the queue absorbs a
          // burst while the SP wakes, so losses — and hence power —
          // hinge directly on the wake speed.  The performance series
          // uses the Appendix B baseline (flip 0.01, capacity 2).
          spec.model = [sleep_power, p, loss_constrained] {
            return loss_constrained
                       ? sens::make_model({{"sleep", sleep_power, p}}, 0.05,
                                          4)
                       : sens::make_model({{"sleep", sleep_power, p}}, 0.01,
                                          2);
          };
          spec.config = [](const SystemModel& m) {
            return sens::make_config(m, 1e5);
          };
          spec.objective = [](const SystemModel& m) {
            return metrics::power(m);
          };
          spec.constraints = [loss_constrained](const SystemModel& m) {
            if (loss_constrained) {
              return std::vector<OptimizationConstraint>{
                  {metrics::request_loss(m), 0.02, "loss"},
                  {metrics::queue_length(m), 2.0, "perf"}};
            }
            return std::vector<OptimizationConstraint>{
                {metrics::queue_length(m), 0.3, "performance"}};
          };
          units.push_back(point_unit(std::move(spec)));
        }
      }
    }
    return units;
  };

  sc.check = [](ShapeChecker& c) {
    // Faster transitions never cost power; with the fast (one-slice)
    // transition the 0 W sleep beats the 2 W sleep.
    for (const char* series :
         {"sleep2W loss<=0.02", "sleep2W queue<=0.3", "sleep0W loss<=0.02",
          "sleep0W queue<=0.3"}) {
      const std::string slow = std::string(series) + " wake=0.001";
      const std::string fast = std::string(series) + " wake=1";
      if (c.get(slow + "/feasible") == 1.0) {
        c.check(c.get(fast + "/objective") <=
                    c.get(slow + "/objective") + 1e-6,
                std::string(series) +
                    ": a faster wake transition should not cost power");
      } else {
        c.check(c.get(fast + "/feasible") == 1.0,
                std::string(series) +
                    ": even the fast-transition cell is infeasible");
      }
    }
    c.check(c.get("sleep0W queue<=0.3 wake=1/objective") <=
                c.get("sleep2W queue<=0.3 wake=1/objective") + 1e-6,
            "with fast transitions the deeper sleep state should win");
  };
  return sc;
}

// ------------------------------------------------------------ Fig. 13a
Scenario make_fig13a() {
  Scenario sc;
  sc.name = "fig13a_burstiness";
  sc.title = "Figure 13(a) (Appendix B)";
  sc.what =
      "power vs SR burstiness at constant load 0.5 (flip prob swept, "
      "bursty = small): long idle runs are exploitable, so burstier "
      "workloads need less power";

  sc.units = [](bool smoke) {
    const std::vector<double> all_flips{0.005, 0.01, 0.02, 0.05,
                                        0.1,   0.2,  0.35, 0.5};
    const std::vector<double> flips =
        smoke ? std::vector<double>{0.005, 0.1, 0.5} : all_flips;

    std::vector<Unit> units;
    for (const double q_bound : {0.1, 0.5}) {
      for (const double p : flips) {
        PointSpec spec;
        spec.name = fmt("queue<=%.1f", q_bound) + " flip=" + fmt("%g", p);
        spec.model = [p] {
          return sens::make_model(sens::standard_sleep_states(), p, 2);
        };
        spec.config = [](const SystemModel& m) {
          return sens::make_config(m, 1e3);
        };
        spec.objective = [](const SystemModel& m) {
          return metrics::power(m);
        };
        spec.constraints = [q_bound](const SystemModel& m) {
          return std::vector<OptimizationConstraint>{
              {metrics::queue_length(m), q_bound, "performance"}};
        };
        spec.expect_feasible = true;
        units.push_back(point_unit(std::move(spec)));
      }
    }
    return units;
  };

  sc.check = [](ShapeChecker& c) {
    for (const double q : {0.1, 0.5}) {
      const std::string row = fmt("queue<=%.1f", q);
      c.check(c.get(row + " flip=0.5/objective") >=
                  c.get(row + " flip=0.005/objective") - 1e-6,
              row + ": less burstiness (same load) should not need less "
                    "power");
    }
  };
  return sc;
}

// ------------------------------------------------------------ Fig. 13b
Scenario make_fig13b() {
  Scenario sc;
  sc.name = "fig13b_memory";
  sc.title = "Figure 13(b) (Appendix B)";
  sc.what =
      "power vs SR model memory k (2^k states) on a non-memoryless "
      "idle-time workload: more memory separates long idles from short "
      "ones, and the gain grows with more sleep states";

  sc.units = [](bool smoke) {
    const std::size_t stream_len = smoke ? 60000 : 400000;
    const std::vector<int> ks =
        smoke ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 3, 4};
    const std::vector<double> q_bounds =
        smoke ? std::vector<double>{0.3} : std::vector<double>{0.1, 0.3, 0.6};

    // Every cell re-extracts its own k-memory SR, but the underlying
    // workload is one fixed stream — generate it once and share it
    // read-only across the units.
    const auto stream = std::make_shared<const std::vector<unsigned>>(
        sens::memory_study_stream(stream_len));

    std::vector<Unit> units;
    for (const bool two_sleep : {false, true}) {
      const char* sp_name = two_sleep ? "{s1,s2}" : "{s1}";
      for (const double q_bound : q_bounds) {
        for (const int k : ks) {
          PointSpec spec;
          spec.name = std::string(sp_name) + " " +
                      fmt("queue<=%.1f", q_bound) + " k=" +
                      std::to_string(k);
          spec.model = [two_sleep, k, stream] {
            const ServiceRequester sr = trace::extract_sr(
                *stream,
                {.memory = static_cast<std::size_t>(k), .smoothing = 0.5});
            const auto& sleeps = sens::standard_sleep_states();
            std::vector<sens::SleepStateSpec> specs{sleeps[0]};
            if (two_sleep) specs.push_back(sleeps[1]);
            return SystemModel::compose(sens::make_sp(specs), sr, 2);
          };
          spec.config = [](const SystemModel& m) {
            return sens::make_config(m, 1e4);
          };
          spec.objective = [](const SystemModel& m) {
            return metrics::power(m);
          };
          spec.constraints = [q_bound](const SystemModel& m) {
            return std::vector<OptimizationConstraint>{
                {metrics::queue_length(m), q_bound, "performance"}};
          };
          spec.expect_feasible = true;
          units.push_back(point_unit(std::move(spec)));
        }
      }
    }
    return units;
  };

  sc.check = [](ShapeChecker& c) {
    for (const char* sp : {"{s1}", "{s1,s2}"}) {
      for (const char* q : {"queue<=0.1", "queue<=0.3", "queue<=0.6"}) {
        const std::string base =
            std::string(sp) + " " + q + " k=";
        if (!c.has(base + "1/objective") || !c.has(base + "4/objective")) {
          continue;  // smoke grid carries a subset of rows
        }
        c.check(c.get(base + "4/objective") <=
                    c.get(base + "1/objective") + 1e-6,
                base + "4: more SR memory should not cost power");
      }
    }
  };
  return sc;
}

// ------------------------------------------------------------ Fig. 14a
Scenario make_fig14a() {
  Scenario sc;
  sc.name = "fig14a_horizon";
  sc.title = "Figure 14(a) (Appendix B)";
  sc.what =
      "power vs time horizon (discount), 4-sleep SP, queue <= 0.5.  "
      "REPRODUCTION DEVIATION: under the stopping-time model the "
      "optimum falls slightly toward SHORT horizons (free end-of-"
      "session shutdown); the effect is <6% and vanishes as the "
      "horizon grows";

  sc.units = [](bool smoke) {
    const std::vector<double> all_h{1e2, 3e2, 1e3, 3e3, 1e4, 3e4, 1e5};
    const std::vector<double> horizons =
        smoke ? std::vector<double>{1e2, 1e4} : all_h;

    std::vector<Unit> units;
    for (const double loss : {0.01, 0.05}) {
      for (const double h : horizons) {
        PointSpec spec;
        spec.name = fmt("loss<=%.2f", loss) + " horizon=" + fmt("%g", h);
        spec.model = [] {
          return sens::make_model(sens::standard_sleep_states(), 0.01, 2);
        };
        spec.config = [h](const SystemModel& m) {
          return sens::make_config(m, h);
        };
        spec.objective = [](const SystemModel& m) {
          return metrics::power(m);
        };
        spec.constraints = [loss](const SystemModel& m) {
          return std::vector<OptimizationConstraint>{
              {metrics::queue_length(m), 0.5, "perf"},
              {metrics::request_loss(m), loss, "loss"}};
        };
        spec.expect_feasible = true;
        units.push_back(point_unit(std::move(spec)));
      }
    }
    return units;
  };

  sc.check = [](ShapeChecker& c) {
    // The end-game artifact is small: short and long horizons agree to
    // ~15%, and the short-horizon optimum is never above the long one
    // (shutting down near the session end is free).
    for (const char* loss : {"loss<=0.01", "loss<=0.05"}) {
      const double short_h =
          c.get(std::string(loss) + " horizon=100/objective");
      const double long_h =
          c.get(std::string(loss) + " horizon=10000/objective");
      c.check(short_h <= long_h + 1e-6,
              std::string(loss) +
                  ": the short-horizon optimum should exploit the free "
                  "end-of-session shutdown");
      c.check(std::abs(short_h - long_h) <= 0.15 * long_h,
              std::string(loss) + ": the horizon effect should be small");
    }
  };
  return sc;
}

// ------------------------------------------------------------ Fig. 14b
Scenario make_fig14b() {
  Scenario sc;
  sc.name = "fig14b_queue";
  sc.title = "Figure 14(b) (Appendix B)";
  sc.what =
      "power vs queue capacity 1..8, 4-sleep SP, queue <= 0.5, three "
      "loss bounds: buffering compensates aggressive shutdown when the "
      "loss constraint dominates";

  sc.units = [](bool smoke) {
    const std::vector<int> all_caps{1, 2, 3, 4, 5, 6, 7, 8};
    const std::vector<int> caps =
        smoke ? std::vector<int>{1, 8} : all_caps;

    std::vector<Unit> units;
    for (const double loss : {0.002, 0.01, 0.05}) {
      for (const int cap : caps) {
        PointSpec spec;
        spec.name = fmt("loss<=%.3f", loss) + " cap=" + std::to_string(cap);
        spec.model = [cap] {
          return sens::make_model(sens::standard_sleep_states(), 0.01,
                                  static_cast<std::size_t>(cap));
        };
        spec.config = [](const SystemModel& m) {
          return sens::make_config(m, 1e3);
        };
        spec.objective = [](const SystemModel& m) {
          return metrics::power(m);
        };
        spec.constraints = [loss](const SystemModel& m) {
          return std::vector<OptimizationConstraint>{
              {metrics::queue_length(m), 0.5, "perf"},
              {metrics::request_loss(m), loss, "loss"}};
        };
        units.push_back(point_unit(std::move(spec)));
      }
    }
    return units;
  };

  sc.check = [](ShapeChecker& c) {
    // When the loss constraint dominates, a longer queue reduces power.
    for (const char* loss : {"loss<=0.002", "loss<=0.010"}) {
      const std::string c1 = std::string(loss) + " cap=1";
      const std::string c8 = std::string(loss) + " cap=8";
      if (c.get(c1 + "/feasible") == 1.0) {
        c.check(c.get(c8 + "/objective") <= c.get(c1 + "/objective") + 1e-6,
                std::string(loss) +
                    ": a longer queue should not cost power when the loss "
                    "constraint dominates");
      } else {
        c.check(c.get(c8 + "/feasible") == 1.0,
                std::string(loss) +
                    ": the deep queue should at least restore feasibility");
      }
    }
  };
  return sc;
}

}  // namespace

void register_sensitivity_scenarios() {
  add(make_fig12a());
  add(make_fig12b());
  add(make_fig13a());
  add(make_fig13b());
  add(make_fig14a());
  add(make_fig14b());
}

}  // namespace dpm::scenario
