// Scenario registration for the serving tier (docs/serving.md): dpmd's
// PolicyEngine driven with deterministic fleet-shaped load.
//
// The economics under test are the ISSUE-9/ROADMAP-2 claims: a fleet is
// millions of devices running a handful of distinct designs, so serving
// cost must be dominated by cache replays (zero pivots) and warm-started
// dual repairs (a few percent of a cold solve), not by cold simplex
// runs.  All records follow the wall_ms=0 convention — they carry
// *counts* (devices, hits, pivots) and deterministic ratios; real
// latency/RPS numbers go to stdout lines only, so BENCH_serve.json is
// byte-identical at any --jobs or client-thread count.
#include <chrono>
#include <cmath>
#include <string>
#include <vector>

#include "dpm/evaluation.h"
#include "scenario/json.h"
#include "scenario/registry.h"
#include "serve/engine.h"
#include "serve/fleet.h"

namespace dpm::scenario {

namespace {

using serve::EngineCounters;
using serve::EngineOptions;
using serve::PolicyEngine;
using serve::Request;

double wall_now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One fleet device request: variant picks the design, the bound is the
/// per-device constraint point (90% at the design default, 10% moved).
std::string device_request_line(std::size_t variant, double bound,
                                std::size_t queue_capacity,
                                const std::string& id) {
  Request r;
  r.id = id;
  r.op = serve::Op::kOptimize;
  r.model = serve::fleet_model_spec(variant, queue_capacity);
  r.discount = 0.999;
  r.objective = "power";
  serve::ConstraintSpec c;
  c.metric = "queue_length";
  c.bound = bound;
  r.constraints.push_back(c);
  return format_request(r);
}

Scenario make_serve() {
  Scenario sc;
  sc.name = "serve";
  sc.title = "Serving tier: dpmd fleet mix, cache hits, warm repairs";
  sc.what =
      "PolicyEngine under fleet-shaped load: few designs, many devices, "
      "10% moved bounds — exact hits replay with zero pivots, near hits "
      "repair in a few percent of a cold solve";

  sc.units = [](bool smoke) {
    std::vector<Unit> units;

    units.push_back(Unit{
        "fleet mix: few designs, many devices, 10% perturbed",
        [smoke](UnitContext& ctx) {
          const std::size_t kVariants = 3;
          const std::size_t devices = smoke ? 42 : 300;
          const std::size_t capacity = smoke ? 6 : 24;
          // The uniform initial distribution seeds full-queue states, so
          // the achievable discounted queue average grows with the
          // queue capacity (worst variant minimum: ~0.70 at
          // capacity 6, ~1.09 at capacity 24).  Keep the base bound
          // above both so every device request is feasible.
          const double kBaseBound = smoke ? 0.8 : 1.2;

          // Deterministic device stream: variant round-robins the
          // designs; every 10th-ish device (seed-derived) moves its
          // queue bound off the default.
          std::vector<std::size_t> variants(devices);
          std::vector<double> bounds(devices);
          std::size_t perturbed = 0;
          for (std::size_t d = 0; d < devices; ++d) {
            variants[d] = d % kVariants;
            const std::uint64_t s = ctx.seed(d + 1);
            if (s % 10 == 0) {
              bounds[d] = kBaseBound + 0.01 * static_cast<double>(s % 7 + 1);
              ++perturbed;
            } else {
              bounds[d] = kBaseBound;
            }
          }
          std::vector<std::string> lines(devices);
          for (std::size_t d = 0; d < devices; ++d) {
            lines[d] = device_request_line(variants[d], bounds[d], capacity,
                                           "d" + std::to_string(d));
          }
          // Distinct constraint points = distinct (variant, bound)
          // pairs: the lower bound on solves any server must run.
          std::size_t distinct = 0;
          for (std::size_t d = 0; d < devices; ++d) {
            bool seen = false;
            for (std::size_t e = 0; e < d && !seen; ++e) {
              seen = variants[e] == variants[d] && bounds[e] == bounds[d];
            }
            if (!seen) ++distinct;
          }

          // Phase A — the cold-every-request baseline: a fresh engine
          // per request, so neither the response cache nor a session
          // basis can help.  This is what serving would cost without
          // the content-addressed tiers.
          std::uint64_t cold_baseline_pivots = 0;
          double cold_wall_ms = 0.0;
          {
            const double t0 = wall_now_ms();
            for (std::size_t d = 0; d < devices; ++d) {
              EngineOptions opts;
              opts.cache = false;
              opts.batch_window_us = 0;
              PolicyEngine cold(opts);
              const std::string response = cold.handle_line(lines[d]);
              ctx.check(response.find("\"feasible\":true") !=
                            std::string::npos,
                        "cold baseline request infeasible: " + response);
              cold_baseline_pivots += cold.counters().cold_pivots;
            }
            cold_wall_ms = wall_now_ms() - t0;
          }

          // Phase B — the serving tiers: one engine, batched waves.
          EngineOptions opts;
          opts.batch_window_us = 0;  // batching is explicit here
          PolicyEngine engine(opts);
          const double t1 = wall_now_ms();
          const std::size_t kWave = 16;
          for (std::size_t start = 0; start < devices; start += kWave) {
            const std::size_t end = std::min(devices, start + kWave);
            const std::vector<std::string> wave(lines.begin() + start,
                                                lines.begin() + end);
            const std::vector<std::string> responses =
                engine.handle_batch(wave);
            for (const std::string& response : responses) {
              ctx.check(response.find("\"feasible\":true") !=
                            std::string::npos,
                        "serve request infeasible: " + response);
            }
          }
          const double serve_wall_ms = wall_now_ms() - t1;
          const EngineCounters after = engine.counters();

          ctx.check(after.cold_solves == kVariants,
                    "expected one cold solve per design");
          ctx.check(after.cold_solves + after.near_hits == distinct,
                    "expected one solve per distinct constraint point");
          ctx.check(after.exact_hits == devices - distinct,
                    "every repeated constraint point must replay from "
                    "the cache");

          // Replay wave: the whole fleet again — all exact hits, zero
          // additional simplex work on the engine's own counters.
          const std::vector<std::string> replays =
              engine.handle_batch(lines);
          const EngineCounters replay = engine.counters();
          ctx.check(replay.exact_hits == after.exact_hits + devices,
                    "replay wave must be all exact hits");
          ctx.check(replay.cold_pivots == after.cold_pivots &&
                        replay.repair_pivots == after.repair_pivots,
                    "replay wave must execute zero simplex pivots");

          const std::uint64_t serve_pivots =
              after.cold_pivots + after.repair_pivots;
          const double pivot_ratio =
              serve_pivots > 0 ? static_cast<double>(cold_baseline_pivots) /
                                     static_cast<double>(serve_pivots)
                               : static_cast<double>(cold_baseline_pivots);
          ctx.check(pivot_ratio >= 10.0,
                    "serving must beat cold-every-request by >= 10x in "
                    "simplex work");
          const double avg_cold =
              static_cast<double>(after.cold_pivots) /
              static_cast<double>(after.cold_solves);
          const double avg_repair =
              after.near_hits > 0
                  ? static_cast<double>(after.repair_pivots) /
                        static_cast<double>(after.near_hits)
                  : 0.0;
          if (!smoke) {
            ctx.check(avg_repair < 0.05 * avg_cold,
                      "near-hit repairs must average < 5% of a cold "
                      "solve's pivots");
          } else {
            ctx.check(avg_repair < avg_cold,
                      "near-hit repairs must be cheaper than cold solves");
          }

          ctx.record("serve fleet devices", devices,
                     static_cast<double>(distinct));
          ctx.record("serve fleet exact hits", after.exact_hits,
                     static_cast<double>(devices - distinct));
          ctx.record("serve fleet perturbed", perturbed,
                     static_cast<double>(after.near_hits));
          ctx.record("serve fleet pivots", serve_pivots, pivot_ratio);

          const serve::LatencySummary lat = engine.latency();
          ctx.linef("  fleet %zu devices / %zu designs / %zu points",
                    devices, kVariants, distinct);
          ctx.linef("  cold-every-request %8llu pivots %9.1f ms",
                    static_cast<unsigned long long>(cold_baseline_pivots),
                    cold_wall_ms);
          ctx.linef("  served             %8llu pivots %9.1f ms (%.0fx)",
                    static_cast<unsigned long long>(serve_pivots),
                    serve_wall_ms,
                    serve_wall_ms > 0 ? cold_wall_ms / serve_wall_ms : 0.0);
          ctx.linef("  latency p50 %.3f ms  p99 %.3f ms  (%zu samples)",
                    lat.p50_ms, lat.p99_ms, lat.samples);
          ctx.linef("  sustained %.0f req/s",
                    serve_wall_ms > 0
                        ? 1000.0 * static_cast<double>(devices + replays.size()) /
                              serve_wall_ms
                        : 0.0);

          ctx.value("fleet/devices", static_cast<double>(devices));
          ctx.value("fleet/distinct", static_cast<double>(distinct));
          ctx.value("fleet/pivot_ratio", pivot_ratio);
        }});

    units.push_back(Unit{
        "near-hit repair: moved bounds warm-start from the session basis",
        [smoke](UnitContext& ctx) {
          const std::size_t capacity = smoke ? 6 : 16;
          const std::size_t moves = smoke ? 5 : 12;

          PolicyEngine engine(EngineOptions{});
          std::vector<std::string> lines;
          // Bounds sit above variant 0's achievable minimum at both
          // capacities (~0.47 at 6, below 0.77 at 16) so every move is
          // feasible, and none coincides with the cold request's bound.
          lines.push_back(
              device_request_line(0, 0.95, capacity, "cold"));
          for (std::size_t k = 0; k < moves; ++k) {
            lines.push_back(device_request_line(
                0, 0.8 + 0.02 * static_cast<double>(k), capacity,
                "move" + std::to_string(k)));
          }
          std::vector<std::string> first;
          for (const std::string& line : lines) {
            first.push_back(engine.handle_line(line));
          }
          const EngineCounters counters = engine.counters();
          ctx.check(counters.cold_solves == 1,
                    "exactly one cold solve expected");
          ctx.check(counters.near_hits == moves,
                    "every moved bound must warm-start");

          // The same sequence again: all exact hits, byte-identical.
          std::size_t identical = 0;
          for (std::size_t i = 0; i < lines.size(); ++i) {
            if (engine.handle_line(lines[i]) == first[i]) ++identical;
          }
          ctx.check(identical == lines.size(),
                    "cache replays must be byte-identical to the "
                    "original responses");
          const EngineCounters replay = engine.counters();
          ctx.check(replay.cold_pivots == counters.cold_pivots &&
                        replay.repair_pivots == counters.repair_pivots,
                    "replays must execute zero pivots");

          ctx.record("serve repair cold pivots", counters.cold_pivots,
                     static_cast<double>(counters.cold_solves));
          ctx.record("serve repair warm pivots", counters.repair_pivots,
                     static_cast<double>(counters.near_hits));
          ctx.linef("  cold %llu pivots, %zu moved bounds in %llu pivots",
                    static_cast<unsigned long long>(counters.cold_pivots),
                    moves,
                    static_cast<unsigned long long>(counters.repair_pivots));
        }});

    units.push_back(Unit{
        "bounded sessions: LRU eviction demotes to byte-identical cold "
        "solves",
        [](UnitContext& ctx) {
          // Three designs through a two-session engine: the LRU bound
          // must evict the stalest structure, the demoted re-solve must
          // be a cold solve, and — the canonical-finish invariant — its
          // response bytes must equal a never-warm engine's bytes.
          const std::size_t capacity = 6;
          EngineOptions opts;
          opts.max_sessions = 2;
          opts.batch_window_us = 0;
          PolicyEngine engine(opts);

          const auto solve_ok = [&](std::size_t variant, double bound,
                                    const std::string& id) {
            const std::string response = engine.handle_line(
                device_request_line(variant, bound, capacity, id));
            ctx.check(response.find("\"status\":\"ok\"") != std::string::npos,
                      "eviction unit solve failed: " + response);
            return response;
          };

          solve_ok(0, 0.90, "a0");  // session A
          const std::string b0 = solve_ok(1, 0.90, "b0");  // session B
          solve_ok(0, 0.85, "a1");  // near hit: A is now most recent
          solve_ok(2, 0.90, "c0");  // session C evicts B (the LRU)
          EngineCounters counters = engine.counters();
          ctx.check(counters.session_evictions == 1,
                    "inserting past max_sessions must evict exactly once");
          ctx.check(counters.near_hits == 1,
                    "the touched session must have warm-started");

          // The would-be near hit on the evicted structure: demoted to
          // a cold solve whose bytes match a fresh engine's cold solve.
          const std::string demoted_line =
              device_request_line(1, 0.85, capacity, "b1");
          const std::string demoted = engine.handle_line(demoted_line);
          counters = engine.counters();
          ctx.check(counters.cold_solves == 4,
                    "evicted structure must re-solve cold");
          EngineOptions fresh_opts;
          fresh_opts.cache = false;
          fresh_opts.batch_window_us = 0;
          PolicyEngine fresh(fresh_opts);
          const bool identical =
              demoted == fresh.handle_line(demoted_line);
          ctx.check(identical,
                    "demoted solve must be byte-identical to a cold solve");

          // Eviction only drops warm-start state: the response cache
          // still replays the evicted structure's original bytes.
          ctx.check(engine.handle_line(device_request_line(1, 0.90, capacity,
                                                           "b0")) == b0,
                    "cache replay must survive session eviction");
          ctx.check(engine.counters().exact_hits == 1,
                    "the replayed line must be an exact hit");

          ctx.record("serve eviction sessions", opts.max_sessions,
                     static_cast<double>(counters.session_evictions));
          ctx.record("serve eviction demotions", 1, identical ? 1.0 : 0.0);
          ctx.record("serve eviction cold solves", counters.cold_solves,
                     static_cast<double>(counters.near_hits));
          ctx.linef("  3 structures / 2 sessions: %llu eviction, "
                    "demoted cold solve byte-identical=%s",
                    static_cast<unsigned long long>(
                        counters.session_evictions),
                    identical ? "yes" : "no");
        }});

    units.push_back(Unit{
        "protocol: evaluate agreement, typed rejections, stats",
        [](UnitContext& ctx) {
          PolicyEngine engine(EngineOptions{});

          // evaluate against the closed-form PolicyEvaluation answer.
          Request eval;
          eval.op = serve::Op::kEvaluate;
          eval.model = serve::fleet_model_spec(1, 2);
          eval.discount = 0.999;
          const SystemModel model = eval.model->compose();
          eval.policy.assign(model.num_states(),
                             std::vector<double>(model.num_commands(), 0.0));
          for (auto& row : eval.policy) row[0] = 1.0;
          eval.metrics = {"power", "queue_length", "request_loss"};
          const std::string response =
              engine.handle_line(format_request(eval));
          ctx.check(response.find("\"status\":\"ok\"") != std::string::npos,
                    "evaluate failed: " + response);

          const Policy policy = Policy::constant(
              model.num_states(), model.num_commands(), 0);
          const PolicyEvaluation direct(model, policy, eval.discount,
                                        model.uniform_distribution());
          const double want = direct.per_step(metrics::power(model));
          const JsonValue parsed = JsonValue::parse(response);
          const double got = parsed.get("metrics")->number_at("power");
          ctx.check(std::abs(got - want) <= 1e-9 * std::max(1.0, want),
                    "evaluate disagrees with PolicyEvaluation");
          ctx.record("serve evaluate power", eval.metrics.size(), got);

          // Typed rejections, one per code class.
          const auto expect_code = [&](const std::string& line,
                                       const std::string& code) {
            const std::string got_response = engine.handle_line(line);
            ctx.check(got_response.find("\"code\":\"" + code + "\"") !=
                          std::string::npos,
                      "expected " + code + " for " + line + ", got " +
                          got_response);
          };
          expect_code("{not json", "bad-json");
          expect_code("{\"op\":\"meditate\"}", "unknown-op");
          expect_code("{\"op\":\"optimize\"}", "bad-request");
          expect_code(
              "{\"op\":\"reoptimize\",\"model_ref\":"
              "\"00000000000000ff\",\"objective\":\"power\"}",
              "unknown-model");

          const std::string stats =
              engine.handle_line("{\"op\":\"stats\"}");
          ctx.check(stats.find("\"rejections\":4") != std::string::npos,
                    "stats must count the four rejections: " + stats);
          ctx.linef("  evaluate power %.6f W (closed form %.6f W)", got,
                    want);
        }});

    return units;
  };

  // Golden-drift gating is count-only: the "pivots" records move with
  // solver tuning (order of magnitude allowed — only a lost warm start
  // should fail); the remaining records are exact counts.
  sc.tolerances = {
      {"pivots", 1e9, 10.0, 1e9, 10.0},
      {"", 1e-9, 1e-7, 50.0, 1.0},
  };
  return sc;
}

}  // namespace

void register_serve_scenarios() { add(make_serve()); }

}  // namespace dpm::scenario
