#include "scenario/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dpm::scenario {

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw JsonError("json: not a boolean");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) throw JsonError("json: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw JsonError("json: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) throw JsonError("json: not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::kObject) throw JsonError("json: not an object");
  return members_;
}

const JsonValue* JsonValue::get(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::number_at(std::string_view key) const {
  const JsonValue* v = get(key);
  if (v == nullptr || !v->is_number()) {
    throw JsonError("json: missing or non-numeric field '" +
                    std::string(key) + "'");
  }
  return v->as_number();
}

const std::string& JsonValue::string_at(std::string_view key) const {
  const JsonValue* v = get(key);
  if (v == nullptr || !v->is_string()) {
    throw JsonError("json: missing or non-string field '" + std::string(key) +
                    "'");
  }
  return v->as_string();
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ != Kind::kArray) throw JsonError("json: push_back on non-array");
  items_.push_back(std::move(v));
}

void JsonValue::set(std::string key, JsonValue v) {
  if (kind_ != Kind::kObject) throw JsonError("json: set on non-object");
  members_.emplace_back(std::move(key), std::move(v));
}

// ------------------------------------------------------------- parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue::null();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // BMP-only UTF-8 encoding (cache payloads are ASCII; this
          // branch exists for completeness).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    // strtod needs a NUL-terminated buffer; the slice is short.
    const std::string slice(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(slice.c_str(), &end);
    if (end != slice.c_str() + slice.size()) fail("malformed number");
    return JsonValue::number(v);
  }
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

// ------------------------------------------------------------- writer

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  char buf[40];
  // 17 significant digits round-trip every finite IEEE-754 double.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void JsonValue::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      out += json_number(number_);
      break;
    case Kind::kString:
      out.push_back('"');
      out += json_escape(string_);
      out.push_back('"');
      break;
    case Kind::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i != 0) out.push_back(',');
        items_[i].dump_to(out);
      }
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) out.push_back(',');
        out.push_back('"');
        out += json_escape(members_[i].first);
        out += "\":";
        members_[i].second.dump_to(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

}  // namespace dpm::scenario
