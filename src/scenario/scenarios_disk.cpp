// Scenario registrations for the disk-drive case study: Table I +
// Fig. 8(b) (Sec. VI-A) and the PO1<->PO2 duality walk (Appendix A).
// Replaces bench_fig08_disk and bench_po1_duality.
#include <cmath>
#include <string>

#include "cases/disk_drive.h"
#include "cases/example_system.h"
#include "cases/heuristics.h"
#include "dpm/evaluation.h"
#include "scenario/registry.h"
#include "sim/simulator.h"

namespace dpm::scenario {

namespace {

using cases::DiskDrive;

// A 1e3-slice expected session keeps every run fast while preserving
// the figure's shape; the paper uses 1e6 slices.
constexpr double kDiskGamma = 0.999;
constexpr double kLossBound = 0.05;

void publish_heuristic_point(UnitContext& ctx, const std::string& key,
                             double power, double queue, double loss) {
  ctx.value("heuristic/" + key + "/power", power);
  ctx.value("heuristic/" + key + "/queue", queue);
  ctx.value("heuristic/" + key + "/loss", loss);
}

// ------------------------------------------------------------ Fig. 8b
Scenario make_fig08_disk() {
  Scenario sc;
  sc.name = "fig08_disk";
  sc.title = "Table I + Figure 8(b) (Sec. VI-A)";
  sc.what =
      "IBM Travelstar VP disk drive, 66-state model, tau = 1 ms: optimal "
      "tradeoff curve vs greedy/timeout/randomized heuristics and "
      "trace-driven circles";
  sc.units = [](bool /*smoke*/) {
    std::vector<Unit> units;

    units.push_back(Unit{"Table I + workload", [](UnitContext& ctx) {
      for (const auto& row : DiskDrive::table_i()) {
        if (row.wake_time_ms == 0.0) {
          ctx.linef("  %-10s %14s %9.1fW", row.name, "-", row.power_w);
        } else if (row.wake_time_ms >= 1000.0) {
          ctx.linef("  %-10s %13.1fs %9.1fW", row.name,
                    row.wake_time_ms / 1000.0, row.power_w);
        } else {
          ctx.linef("  %-10s %12.1fms %9.1fW", row.name, row.wake_time_ms,
                    row.power_w);
        }
      }
      const SystemModel m = DiskDrive::make_model(/*seed=*/42);
      ctx.linef("  SR P[idle->busy] %.4f, P[busy->busy] %.4f, load %.4f",
                m.requester().chain().transition(0, 1),
                m.requester().chain().transition(1, 1),
                m.requester().mean_arrival_rate());
      ctx.check(m.num_states() == 66,
                "the composed disk model should have 66 states as in the "
                "paper");
    }});

    // The optimal tradeoff curve (solid line) with per-point Markov
    // simulation of the optimal policies (circles).
    {
      SweepSpec spec;
      spec.series = "curve";
      spec.model = [] { return DiskDrive::make_model(/*seed=*/42); };
      spec.config = [](const SystemModel& m) {
        return DiskDrive::make_config(m, kDiskGamma);
      };
      spec.objective = [](const SystemModel& m) { return metrics::power(m); };
      spec.swept = [](const SystemModel& m) {
        return metrics::queue_length(m);
      };
      spec.swept_name = "queue";
      spec.bounds = {0.15, 0.2, 0.3, 0.4, 0.6, 0.9, 1.3};
      spec.fixed = [](const SystemModel& m) {
        return std::vector<OptimizationConstraint>{
            {metrics::request_loss(m), kLossBound, "loss"}};
      };
      spec.monotone = Monotone::kNonincreasing;
      spec.smoke_points = 3;
      spec.inspect = [](const SystemModel& m, const PolicyOptimizer& opt,
                        const std::vector<PolicyOptimizer::ParetoPoint>& curve,
                        UnitContext& ctx) {
        sim::Simulator simulator(m);
        const double tol = ctx.smoke() ? 0.30 : 0.10;
        for (std::size_t i = 0; i < curve.size(); ++i) {
          const auto& pt = curve[i];
          if (!pt.feasible) continue;
          sim::PolicyController ctl(m, *pt.policy);
          sim::SimulationConfig cfg;
          cfg.slices = ctx.slices(400000);
          cfg.initial_state = {DiskDrive::kActive, 0, 0};
          cfg.session_restart_prob = 1.0 - opt.config().discount;
          cfg.seed = ctx.seed(100 + i);
          const sim::SimulationResult s = simulator.run(ctl, cfg);
          ctx.linef("  circle q<=%-6.3f LP %8.4f W, simulated %8.4f W",
                    pt.bound, pt.objective, s.avg_power);
          ctx.check(std::abs(s.avg_power - pt.objective) <=
                        tol * pt.objective,
                    "simulated power of the optimal policy drifted off the "
                    "LP prediction at q<=" + std::to_string(pt.bound));
        }
      };
      units.push_back(sweep_unit(std::move(spec)));
    }

    units.push_back(Unit{
        "trace-driven simulation of one optimal policy", [](UnitContext& ctx) {
          const SystemModel m = DiskDrive::make_model(/*seed=*/42);
          const PolicyOptimizer opt(m, DiskDrive::make_config(m, kDiskGamma));
          const OptimizationResult r = opt.minimize_power(0.4, kLossBound);
          ctx.check(r.feasible, "q<=0.4 point unexpectedly infeasible");
          if (!r.feasible) return;
          const std::vector<unsigned> stream =
              DiskDrive::make_trace(ctx.slices(400000), 42);
          sim::Simulator simulator(m);
          sim::PolicyController ctl(m, *r.policy);
          sim::SimulationConfig cfg;
          cfg.slices = stream.size();
          cfg.initial_state = {DiskDrive::kActive, 0, 0};
          cfg.session_restart_prob = 1.0 - kDiskGamma;
          cfg.seed = ctx.seed(1);
          const sim::SimulationResult s = simulator.run_trace(ctl, stream, cfg);
          ctx.record("trace-driven power", cfg.slices, s.avg_power);
          ctx.linef("  LP %8.4f W; trace-driven %8.4f W, queue %8.4f",
                    r.objective_per_step, s.avg_power, s.avg_queue_length);
          const double tol = ctx.smoke() ? 0.35 : 0.15;
          ctx.check(std::abs(s.avg_power - r.objective_per_step) <=
                        tol * r.objective_per_step,
                    "trace-driven power drifted far off the SR-model "
                    "prediction (SR extraction no longer faithful)");
        }});

    units.push_back(Unit{
        "greedy heuristics (exact evaluation)", [](UnitContext& ctx) {
          const SystemModel m = DiskDrive::make_model(/*seed=*/42);
          const PolicyOptimizer opt(m, DiskDrive::make_config(m, kDiskGamma));
          const linalg::Vector& p0 = opt.config().initial_distribution;
          const struct {
            const char* name;
            std::size_t sleep_cmd;
          } greedy[] = {
              {"greedy->idle", DiskDrive::kGoIdle},
              {"greedy->LPidle", DiskDrive::kGoLpIdle},
              {"greedy->standby", DiskDrive::kGoStandby},
              {"greedy->sleep", DiskDrive::kGoSleep},
          };
          for (const auto& g : greedy) {
            const Policy pol =
                cases::eager_policy(m, g.sleep_cmd, DiskDrive::kGoActive);
            const PolicyEvaluation ev(m, pol, kDiskGamma, p0);
            const double power = ev.per_step(metrics::power(m));
            const double queue = ev.per_step(metrics::queue_length(m));
            const double loss = ev.per_step(metrics::request_loss(m));
            ctx.linef("  %-18s %10.4f W  queue %8.4f  loss %8.4f", g.name,
                      power, queue, loss);
            ctx.record(g.name, 0, power);
            publish_heuristic_point(ctx, g.name, power, queue, loss);
          }
        }});

    const struct {
      const char* target;
      std::size_t cmd;
      std::size_t timeouts[3];
    } families[] = {
        {"LPidle", DiskDrive::kGoLpIdle, {0, 50, 500}},
        {"standby", DiskDrive::kGoStandby, {200, 2000, 10000}},
        {"sleep", DiskDrive::kGoSleep, {2000, 10000, 40000}},
    };
    for (const auto& fam : families) {
      const std::string label =
          std::string("timeout heuristics -> ") + fam.target;
      const auto family = fam;  // copy into the closure
      units.push_back(Unit{label, [family](UnitContext& ctx) {
        const SystemModel m = DiskDrive::make_model(/*seed=*/42);
        sim::Simulator simulator(m);
        for (std::size_t k = 0; k < 3; ++k) {
          const std::size_t timeout = family.timeouts[k];
          sim::TimeoutController ctl(timeout, family.cmd,
                                     DiskDrive::kGoActive);
          sim::SimulationConfig cfg;
          cfg.slices = ctx.slices(800000);
          cfg.initial_state = {DiskDrive::kActive, 0, 0};
          // Same stopping-time measure as the optimizer, so the optimal
          // curve is a true lower bound for these points.
          cfg.session_restart_prob = 1.0 - kDiskGamma;
          cfg.seed = ctx.seed(k);
          const sim::SimulationResult s = simulator.run(ctl, cfg);
          const std::string key = std::string("timeout") +
                                  std::to_string(timeout) + "->" +
                                  family.target;
          ctx.linef("  %-24s %10.4f W  queue %8.4f  loss %8.4f", key.c_str(),
                    s.avg_power, s.avg_queue_length, s.loss_state_rate);
          ctx.record(key, cfg.slices, s.avg_power);
          publish_heuristic_point(ctx, key, s.avg_power, s.avg_queue_length,
                                  s.loss_state_rate);
        }
      }});
    }

    units.push_back(Unit{
        "randomized timeout mix", [](UnitContext& ctx) {
          const SystemModel m = DiskDrive::make_model(/*seed=*/42);
          sim::Simulator simulator(m);
          sim::RandomizedTimeoutController ctl(
              {{50, DiskDrive::kGoLpIdle, 0.5},
               {2000, DiskDrive::kGoStandby, 0.3},
               {10000, DiskDrive::kGoSleep, 0.2}},
              DiskDrive::kGoActive);
          sim::SimulationConfig cfg;
          cfg.slices = ctx.slices(400000);
          cfg.initial_state = {DiskDrive::kActive, 0, 0};
          cfg.session_restart_prob = 1.0 - kDiskGamma;
          cfg.seed = ctx.seed(0);
          const sim::SimulationResult s = simulator.run(ctl, cfg);
          ctx.linef("  randomized mix %10.4f W  queue %8.4f  loss %8.4f",
                    s.avg_power, s.avg_queue_length, s.loss_state_rate);
          ctx.record("randomized mix", cfg.slices, s.avg_power);
          publish_heuristic_point(ctx, "randomized-mix", s.avg_power,
                                  s.avg_queue_length, s.loss_state_rate);
        }});
    return units;
  };

  // Fig. 8(b)'s headline claim: the optimal curve lower-bounds every
  // heuristic at matching performance/loss.
  sc.check = [](ShapeChecker& c) {
    const std::vector<CurvePoint> curve = collect_curve(c, "curve");
    // Collect heuristic points out of the value store.
    std::vector<std::string> keys;
    for (const auto& [k, v] : c.values()) {
      const std::string prefix = "heuristic/";
      const std::string suffix = "/power";
      if (k.size() > prefix.size() + suffix.size() &&
          k.compare(0, prefix.size(), prefix) == 0 &&
          k.compare(k.size() - suffix.size(), suffix.size(), suffix) == 0) {
        keys.push_back(
            k.substr(prefix.size(), k.size() - prefix.size() - suffix.size()));
      }
    }
    for (const std::string& h : keys) {
      const double hp = c.get("heuristic/" + h + "/power");
      const double hq = c.get("heuristic/" + h + "/queue");
      const double hl = c.get("heuristic/" + h + "/loss");
      // Only heuristic points inside the curve's constraint set are
      // bounded by it (the curve also holds loss <= 0.05).  2% + 20 mW
      // of slack absorbs the heuristics' Monte-Carlo noise.
      if (hl > kLossBound) continue;
      check_curve_dominates(c, curve, hq, hp, 0.02, 0.02,
                            "heuristic '" + h + "'");
    }
  };
  // --compare tolerances (first match wins).  Monte-Carlo records move
  // when simulation internals legitimately change (5% + 20 mW); pivot
  // summaries move with any solver tuning (only blowups should fail);
  // LP curve points and exact evaluations are near-exact.
  sc.tolerances = {
      {.name_contains = "trace-driven", .objective_abs = 0.02,
       .objective_rel = 0.05},
      {.name_contains = "timeout", .objective_abs = 0.02,
       .objective_rel = 0.05},
      {.name_contains = "randomized mix", .objective_abs = 0.02,
       .objective_rel = 0.05},
      {.name_contains = "pivots", .objective_abs = 50.0,
       .objective_rel = 1.0},
      {.name_contains = "", .objective_abs = 1e-6, .objective_rel = 1e-5},
  };
  return sc;
}

// -------------------------------------------------------- PO1 <-> PO2
void po1_round_trip_inspect(
    const SystemModel& /*m*/, const PolicyOptimizer& opt,
    const std::vector<PolicyOptimizer::ParetoPoint>& curve, UnitContext& ctx) {
  std::size_t lp3_pivots = 0;
  for (const auto& pt : curve) {
    if (!pt.feasible) {
      ctx.linef("  q<=%-8.3f infeasible", pt.bound);
      continue;
    }
    const OptimizationResult lp3 =
        opt.minimize_penalty(pt.objective + 1e-9);
    lp3_pivots += lp3.lp_iterations;
    const bool ok =
        lp3.feasible && std::abs(lp3.objective_per_step - pt.bound) < 1e-5;
    ctx.linef("  q<=%-8.3f LP4 %10.5f W -> LP3 queue %10.5f  %s", pt.bound,
              pt.objective, lp3.feasible ? lp3.objective_per_step : -1.0,
              ok ? "round-trips" : "FAILS");
    ctx.check(ok, "LP3(LP4 power budget) failed to recover q<=" +
                      std::to_string(pt.bound));
  }
  ctx.record("LP3 pivots", lp3_pivots, static_cast<double>(lp3_pivots));
}

Scenario make_po1_duality() {
  Scenario sc;
  sc.name = "po1_duality";
  sc.title = "PO1 <-> PO2 duality (Appendix A, LP3 vs LP4)";
  sc.what =
      "LP4's optimal power, used as LP3's power budget, recovers the "
      "original performance bound on the running example and the disk";
  sc.units = [](bool /*smoke*/) {
    std::vector<Unit> units;
    {
      SweepSpec spec;
      spec.series = "example";
      spec.model = [] { return cases::ExampleSystem::make_model(); };
      spec.config = [](const SystemModel& m) {
        return cases::ExampleSystem::make_config(m);
      };
      spec.objective = [](const SystemModel& m) { return metrics::power(m); };
      spec.swept = [](const SystemModel& m) {
        return metrics::queue_length(m);
      };
      spec.swept_name = "queue";
      spec.bounds = {0.25, 0.3, 0.35, 0.4, 0.45, 0.5};
      spec.monotone = Monotone::kNonincreasing;
      spec.smoke_points = 2;
      spec.inspect = po1_round_trip_inspect;
      units.push_back(sweep_unit(std::move(spec)));
    }
    {
      SweepSpec spec;
      spec.series = "disk";
      spec.model = [] { return DiskDrive::make_model(); };
      spec.config = [](const SystemModel& m) {
        return DiskDrive::make_config(m, 0.999);
      };
      spec.objective = [](const SystemModel& m) { return metrics::power(m); };
      spec.swept = [](const SystemModel& m) {
        return metrics::queue_length(m);
      };
      spec.swept_name = "queue";
      spec.bounds = {0.15, 0.2, 0.3, 0.4};
      spec.monotone = Monotone::kNonincreasing;
      spec.smoke_points = 2;
      spec.inspect = po1_round_trip_inspect;
      units.push_back(sweep_unit(std::move(spec)));
    }
    return units;
  };
  return sc;
}

}  // namespace

void register_disk_scenarios() {
  add(make_fig08_disk());
  add(make_po1_duality());
}

}  // namespace dpm::scenario
