#include "scenario/compare.h"

#include <cmath>
#include <cstdio>
#include <map>

#include "scenario/json.h"

namespace dpm::scenario {

namespace {

std::string fmt(const char* format, double a, double b) {
  char buf[160];
  std::snprintf(buf, sizeof buf, format, a, b);
  return buf;
}

bool within(double fresh, double base, double abs_tol, double rel_tol) {
  return std::abs(fresh - base) <= abs_tol + rel_tol * std::abs(base);
}

}  // namespace

std::vector<Record> parse_baseline(const std::string& json_text,
                                   std::string* bench_name_out) {
  const JsonValue doc = JsonValue::parse(json_text);
  if (bench_name_out != nullptr) *bench_name_out = doc.string_at("bench");
  const JsonValue* results = doc.get("results");
  if (results == nullptr || !results->is_array()) {
    throw JsonError("baseline: missing 'results' array");
  }
  std::vector<Record> records;
  records.reserve(results->items().size());
  for (const JsonValue& item : results->items()) {
    Record r;
    r.name = item.string_at("name");
    r.wall_ms = item.number_at("wall_ms");
    const double iters = item.number_at("iterations");
    if (iters < 0.0) throw JsonError("baseline: negative iteration count");
    r.iterations = static_cast<std::size_t>(iters);
    r.objective = item.number_at("objective");
    records.push_back(std::move(r));
  }
  return records;
}

ToleranceRule tolerance_for(const Scenario& sc,
                            const std::string& record_name) {
  for (const ToleranceRule& rule : sc.tolerances) {
    if (rule.name_contains.empty() ||
        record_name.find(rule.name_contains) != std::string::npos) {
      return rule;
    }
  }
  return ToleranceRule{};
}

CompareReport compare_records(const Scenario& sc,
                              const std::vector<Record>& baseline,
                              const std::vector<Record>& fresh) {
  CompareReport report;
  report.scenario = sc.name;

  // Key by (name, occurrence index): names are unique in practice, but
  // a duplicate must pair with its same-ranked twin, not collide.
  using Key = std::pair<std::string, std::size_t>;
  std::map<Key, const Record*> base_map;
  std::map<std::string, std::size_t> base_seen;
  for (const Record& r : baseline) {
    base_map.emplace(Key{r.name, base_seen[r.name]++}, &r);
  }

  std::map<std::string, std::size_t> fresh_seen;
  for (const Record& r : fresh) {
    const Key key{r.name, fresh_seen[r.name]++};
    const auto it = base_map.find(key);
    if (it == base_map.end()) {
      report.issues.push_back(
          {r.name, "extra record (not in the baseline) — regenerate the "
                   "baseline if the scenario legitimately grew"});
      continue;
    }
    const Record& base = *it->second;
    base_map.erase(it);
    ++report.compared;

    const ToleranceRule tol = tolerance_for(sc, r.name);
    if (!within(r.objective, base.objective, tol.objective_abs,
                tol.objective_rel)) {
      report.issues.push_back(
          {r.name,
           fmt("objective drifted: baseline %.12g, got %.12g", base.objective,
               r.objective) +
               fmt(" (tolerance abs %.3g + rel %.3g)", tol.objective_abs,
                   tol.objective_rel)});
    }
    if (!within(static_cast<double>(r.iterations),
                static_cast<double>(base.iterations), tol.iterations_abs,
                tol.iterations_rel)) {
      report.issues.push_back(
          {r.name,
           fmt("iterations blew up: baseline %.0f, got %.0f",
               static_cast<double>(base.iterations),
               static_cast<double>(r.iterations)) +
               fmt(" (tolerance abs %.3g + rel %.3g)", tol.iterations_abs,
                   tol.iterations_rel)});
    }
    // wall_ms is deliberately not compared: scenario records carry 0 by
    // the determinism contract, and bench-grade wall times are trends.
  }

  for (const auto& [key, rec] : base_map) {
    report.issues.push_back(
        {rec->name, "missing record (present in the baseline, absent from "
                    "this run)"});
  }
  return report;
}

std::string format_report(const CompareReport& report) {
  char head[160];
  if (report.ok()) {
    std::snprintf(head, sizeof head,
                  "compare %-22s %4zu records vs baseline — OK",
                  report.scenario.c_str(), report.compared);
    return head;
  }
  std::snprintf(head, sizeof head,
                "compare %-22s %4zu records vs baseline — %zu MISMATCH(ES)",
                report.scenario.c_str(), report.compared,
                report.issues.size());
  std::string out = head;
  for (const CompareIssue& issue : report.issues) {
    out += "\n  FAIL ";
    if (!issue.record.empty()) {
      out += "'" + issue.record + "': ";
    }
    out += issue.what;
  }
  return out;
}

}  // namespace dpm::scenario
