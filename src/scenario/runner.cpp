#include "scenario/runner.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <optional>
#include <thread>

#include "robust/fault_injection.h"
#include "robust/probe.h"
#include "scenario/cache.h"

namespace dpm::scenario {

namespace {

struct UnitTask {
  std::size_t scenario = 0;  // index into the scenario list
  std::size_t unit = 0;      // index into that scenario's unit list
};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void print_banner(const Scenario& sc, bool smoke) {
  std::printf("\n");
  std::printf(
      "=====================================================================\n");
  std::printf("%s — %s%s\n", sc.name.c_str(), sc.title.c_str(),
              smoke ? "  [smoke]" : "");
  std::printf("  %s\n", sc.what.c_str());
  std::printf(
      "=====================================================================\n");
}

}  // namespace

std::vector<ScenarioRunResult> ExperimentRunner::run(
    const std::vector<const Scenario*>& scenarios) const {
  const bool smoke = options_.smoke;

  // Expand every scenario's grid up front so the pool sees one flat
  // task list (units of different scenarios interleave freely).
  std::vector<std::vector<Unit>> units(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    units[i] = scenarios[i]->units(smoke);
  }

  std::vector<std::vector<UnitOutput>> outputs(scenarios.size());
  std::vector<std::vector<char>> cached(scenarios.size());
  std::vector<std::vector<std::size_t>> attempts(scenarios.size());
  std::vector<std::vector<std::string>> first_error(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    outputs[i].resize(units[i].size());
    cached[i].assign(units[i].size(), 0);
    attempts[i].assign(units[i].size(), 0);
    first_error[i].resize(units[i].size());
  }

  // Content-addressed result cache: resolve hits before the pool starts
  // (lookups and stores are single-threaded by construction; workers
  // never touch the cache).  Keys are computed up front too — model
  // hashing is cheap next to a solve, and a key is needed either way to
  // store a miss.  The fingerprint does re-compose the unit's model on
  // this thread (the body composes its own copy again on a miss); that
  // duplicate work is accepted while composition stays far below solve
  // cost — revisit if scenarios ever carry bench_mdp_scale-sized
  // models.
  std::unique_ptr<ResultCache> cache;
  std::vector<std::vector<std::uint64_t>> keys(scenarios.size());
  std::vector<std::vector<char>> keyed(scenarios.size());
  std::vector<UnitTask> tasks;
  if (options_.cache) {
    cache = std::make_unique<ResultCache>(options_.cache_dir,
                                          options_.cache_max_entries);
    cache->load();
  }
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (cache != nullptr) {
      keys[i].resize(units[i].size(), 0);
      keyed[i].assign(units[i].size(), 0);
    }
    for (std::size_t u = 0; u < units[i].size(); ++u) {
      if (cache != nullptr) {
        // Fingerprints compose the unit's model (and assemble its LP),
        // so they can throw the same way the unit body would.  A
        // throwing fingerprint makes the unit uncacheable — it falls
        // through to the pool, whose try/catch reports the real error
        // as a shape failure instead of aborting the process here.
        try {
          keys[i][u] = unit_key(*scenarios[i], units[i][u], u, smoke);
          keyed[i][u] = 1;
          if (cache->lookup(keys[i][u], outputs[i][u])) {
            cached[i][u] = 1;
            continue;  // replayed — nothing to execute
          }
        } catch (...) {
        }
      }
      tasks.push_back({i, u});
    }
  }

  // Work-stealing-by-counter pool.  Units write only into their own
  // preassigned output slot, so no synchronization beyond the counter
  // (and the final join) is needed, and results are independent of
  // which worker ran what.
  std::atomic<std::size_t> next{0};
  const auto worker = [&]() {
    for (;;) {
      const std::size_t t = next.fetch_add(1, std::memory_order_relaxed);
      if (t >= tasks.size()) return;
      const UnitTask task = tasks[t];
      const Scenario& sc = *scenarios[task.scenario];
      Unit& unit = units[task.scenario][task.unit];

      // Arm this unit's fault plan once, OUTSIDE the attempt loop: the
      // plan is derived from the unit's identity (never the worker), so
      // injection is --jobs-invariant, and a consumed single-shot fault
      // stays consumed — the retry below solves clean and reproduces
      // the fault-free output byte-for-byte.
      std::optional<robust::FaultScope> fault_scope;
      if (options_.fault.has_value()) {
        fault_scope.emplace(robust::FaultPlan::derive(
            options_.fault->site, sc.name, task.unit, options_.fault->window,
            options_.fault->count));
      }

      const std::size_t max_attempts = options_.unit_retries + 1;
      for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
        UnitContext ctx(sc.name, task.unit, smoke);
        if (options_.unit_deadline_ms > 0.0) {
          robust::set_thread_deadline(options_.unit_deadline_ms);
        }
        const double t0 = now_ms();
        try {
          unit.run(ctx);
        } catch (const std::exception& e) {
          ctx.check(false, "unit '" + unit.label + "' threw: " + e.what());
        } catch (...) {
          ctx.check(false,
                    "unit '" + unit.label + "' threw a non-std exception");
        }
        robust::clear_thread_deadline();
        ctx.output().wall_ms = now_ms() - t0;
        attempts[task.scenario][task.unit] = attempt;
        if (attempt == 1 && !ctx.output().failures.empty()) {
          first_error[task.scenario][task.unit] =
              ctx.output().failures.front();
        }
        const bool clean = ctx.output().failures.empty();
        if (clean || attempt == max_attempts) {
          outputs[task.scenario][task.unit] = std::move(ctx.output());
          break;
        }
        if (options_.retry_backoff_ms > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(
                  options_.retry_backoff_ms * static_cast<double>(attempt)));
        }
      }
    }
  };

  std::size_t jobs = options_.jobs == 0 ? 1 : options_.jobs;
  jobs = std::min(jobs, tasks.size() == 0 ? std::size_t{1} : tasks.size());
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t i = 0; i < jobs; ++i) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
  }

  // Record the fresh (clean) results and persist the store; failed
  // units are never cached — they must recompute every run until fixed.
  if (cache != nullptr) {
    for (const UnitTask& task : tasks) {
      const UnitOutput& out = outputs[task.scenario][task.unit];
      if (!out.failures.empty()) continue;
      if (keyed[task.scenario][task.unit] == 0) continue;  // no key
      cache->store(keys[task.scenario][task.unit],
                   scenarios[task.scenario]->name,
                   units[task.scenario][task.unit].label, out);
    }
    if (!cache->flush() && options_.print) {
      std::fprintf(stderr,
                   "scenario cache: could not write %s (results are "
                   "unaffected; caching skipped)\n",
                   cache->path().c_str());
    }
  }

  // Deterministic assembly: scenario order, then unit order.
  std::vector<ScenarioRunResult> results;
  results.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& sc = *scenarios[i];
    ScenarioRunResult res;
    res.name = sc.name;
    res.units = units[i].size();
    if (options_.print) print_banner(sc, smoke);
    for (std::size_t u = 0; u < units[i].size(); ++u) {
      UnitOutput& out = outputs[i][u];
      if (cached[i][u] != 0) ++res.units_cached;
      // Structured failure record for any unit whose first attempt
      // failed.  Recovery notes go to stderr so stdout (and hence the
      // --compare harness) stays byte-identical with a clean run.
      if (attempts[i][u] > 1 || !out.failures.empty()) {
        UnitFailure uf;
        uf.unit = units[i][u].label;
        uf.index = u;
        uf.attempts = attempts[i][u];
        uf.recovered = out.failures.empty();
        uf.detail = first_error[i][u];
        if (options_.print && uf.recovered) {
          std::fprintf(stderr,
                       "  [robust] %s unit '%s' recovered on attempt %zu "
                       "(first attempt: %s)\n",
                       sc.name.c_str(), uf.unit.c_str(), uf.attempts,
                       uf.detail.c_str());
        }
        res.unit_failures.push_back(std::move(uf));
      }
      if (options_.print) {
        if (cached[i][u] != 0) {
          std::printf("\n--- %s ---   (cached)\n", units[i][u].label.c_str());
        } else {
          std::printf("\n--- %s ---   (%.1f ms)\n", units[i][u].label.c_str(),
                      out.wall_ms);
        }
        for (const std::string& line : out.lines) {
          std::printf("%s\n", line.c_str());
        }
      }
      res.wall_ms += out.wall_ms;
      for (Record& r : out.records) {
        res.iterations += r.iterations;
        res.records.push_back(std::move(r));
      }
      // Colliding keys would make cross-unit shape checks silently read
      // the wrong cell — treat a duplicate as a scenario defect.
      for (auto& [k, v] : out.values) {
        if (!res.values.emplace(k, v).second) {
          res.failures.push_back("duplicate cross-unit value key '" + k +
                                 "' (unit '" + units[i][u].label + "')");
        }
      }
      for (std::string& f : out.failures) res.failures.push_back(std::move(f));
    }

    if (sc.check) {
      ShapeChecker checker(res.values);
      sc.check(checker);
      for (std::string& f : checker.take_failures()) {
        res.failures.push_back(std::move(f));
      }
    }

    if (options_.write_json) write_json_report(sc.name, res.records);

    if (options_.print) {
      if (res.failures.empty()) {
        std::printf("\n  shape checks: OK   (%zu units, %zu cached, "
                    "%zu records, %zu iterations, %.1f ms)\n",
                    res.units, res.units_cached, res.records.size(),
                    res.iterations, res.wall_ms);
      } else {
        std::printf("\n  shape checks: %zu FAILURE(S)\n",
                    res.failures.size());
        for (const std::string& f : res.failures) {
          std::printf("    FAIL: %s\n", f.c_str());
        }
      }
    }
    results.push_back(std::move(res));
  }
  return results;
}

ScenarioRunResult ExperimentRunner::run_one(const Scenario& scenario) const {
  return run({&scenario}).front();
}

}  // namespace dpm::scenario
