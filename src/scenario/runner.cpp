#include "scenario/runner.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <thread>

namespace dpm::scenario {

namespace {

struct UnitTask {
  std::size_t scenario = 0;  // index into the scenario list
  std::size_t unit = 0;      // index into that scenario's unit list
};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void print_banner(const Scenario& sc, bool smoke) {
  std::printf("\n");
  std::printf(
      "=====================================================================\n");
  std::printf("%s — %s%s\n", sc.name.c_str(), sc.title.c_str(),
              smoke ? "  [smoke]" : "");
  std::printf("  %s\n", sc.what.c_str());
  std::printf(
      "=====================================================================\n");
}

}  // namespace

std::vector<ScenarioRunResult> ExperimentRunner::run(
    const std::vector<const Scenario*>& scenarios) const {
  const bool smoke = options_.smoke;

  // Expand every scenario's grid up front so the pool sees one flat
  // task list (units of different scenarios interleave freely).
  std::vector<std::vector<Unit>> units(scenarios.size());
  std::vector<UnitTask> tasks;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    units[i] = scenarios[i]->units(smoke);
    for (std::size_t u = 0; u < units[i].size(); ++u) {
      tasks.push_back({i, u});
    }
  }

  std::vector<std::vector<UnitOutput>> outputs(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    outputs[i].resize(units[i].size());
  }

  // Work-stealing-by-counter pool.  Units write only into their own
  // preassigned output slot, so no synchronization beyond the counter
  // (and the final join) is needed, and results are independent of
  // which worker ran what.
  std::atomic<std::size_t> next{0};
  const auto worker = [&]() {
    for (;;) {
      const std::size_t t = next.fetch_add(1, std::memory_order_relaxed);
      if (t >= tasks.size()) return;
      const UnitTask task = tasks[t];
      const Scenario& sc = *scenarios[task.scenario];
      UnitContext ctx(sc.name, task.unit, smoke);
      const double t0 = now_ms();
      try {
        units[task.scenario][task.unit].run(ctx);
      } catch (const std::exception& e) {
        ctx.check(false, "unit '" + units[task.scenario][task.unit].label +
                             "' threw: " + e.what());
      } catch (...) {
        ctx.check(false, "unit '" + units[task.scenario][task.unit].label +
                             "' threw a non-std exception");
      }
      ctx.output().wall_ms = now_ms() - t0;
      outputs[task.scenario][task.unit] = std::move(ctx.output());
    }
  };

  std::size_t jobs = options_.jobs == 0 ? 1 : options_.jobs;
  jobs = std::min(jobs, tasks.size() == 0 ? std::size_t{1} : tasks.size());
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t i = 0; i < jobs; ++i) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
  }

  // Deterministic assembly: scenario order, then unit order.
  std::vector<ScenarioRunResult> results;
  results.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& sc = *scenarios[i];
    ScenarioRunResult res;
    res.name = sc.name;
    res.units = units[i].size();
    if (options_.print) print_banner(sc, smoke);
    for (std::size_t u = 0; u < units[i].size(); ++u) {
      UnitOutput& out = outputs[i][u];
      if (options_.print) {
        std::printf("\n--- %s ---   (%.1f ms)\n", units[i][u].label.c_str(),
                    out.wall_ms);
        for (const std::string& line : out.lines) {
          std::printf("%s\n", line.c_str());
        }
      }
      res.wall_ms += out.wall_ms;
      for (Record& r : out.records) {
        res.iterations += r.iterations;
        res.records.push_back(std::move(r));
      }
      // Colliding keys would make cross-unit shape checks silently read
      // the wrong cell — treat a duplicate as a scenario defect.
      for (auto& [k, v] : out.values) {
        if (!res.values.emplace(k, v).second) {
          res.failures.push_back("duplicate cross-unit value key '" + k +
                                 "' (unit '" + units[i][u].label + "')");
        }
      }
      for (std::string& f : out.failures) res.failures.push_back(std::move(f));
    }

    if (sc.check) {
      ShapeChecker checker(res.values);
      sc.check(checker);
      for (std::string& f : checker.take_failures()) {
        res.failures.push_back(std::move(f));
      }
    }

    if (options_.write_json) write_json_report(sc.name, res.records);

    if (options_.print) {
      if (res.failures.empty()) {
        std::printf("\n  shape checks: OK   (%zu units, %zu records, "
                    "%zu iterations, %.1f ms)\n",
                    res.units, res.records.size(), res.iterations,
                    res.wall_ms);
      } else {
        std::printf("\n  shape checks: %zu FAILURE(S)\n",
                    res.failures.size());
        for (const std::string& f : res.failures) {
          std::printf("    FAIL: %s\n", f.c_str());
        }
      }
    }
    results.push_back(std::move(res));
  }
  return results;
}

ScenarioRunResult ExperimentRunner::run_one(const Scenario& scenario) const {
  return run({&scenario}).front();
}

}  // namespace dpm::scenario
