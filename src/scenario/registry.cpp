#include "scenario/registry.h"

#include <stdexcept>

namespace dpm::scenario {

namespace {

std::vector<Scenario>& table() {
  static std::vector<Scenario> scenarios;
  return scenarios;
}

}  // namespace

void add(Scenario scenario) {
  if (scenario.name.empty() || !scenario.units) {
    throw std::invalid_argument(
        "scenario::add: a scenario needs a name and a unit factory");
  }
  if (find(scenario.name) != nullptr) {
    throw std::invalid_argument("scenario::add: duplicate scenario '" +
                                scenario.name + "'");
  }
  table().push_back(std::move(scenario));
}

const std::vector<Scenario>& all() { return table(); }

const Scenario* find(std::string_view name) {
  for (const Scenario& s : table()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

void register_builtin() {
  static const bool once = [] {
    register_example_scenarios();
    register_disk_scenarios();
    register_cpu_scenarios();
    register_webserver_scenarios();
    register_sensitivity_scenarios();
    register_extension_scenarios();
    register_serve_scenarios();
    return true;
  }();
  (void)once;
}

}  // namespace dpm::scenario
