// Scenario registrations for the paper's running example: Example A.2
// (Sections III-IV, Appendix A), the Fig. 6 Pareto curves, and the
// Theorem A.2 determinization ablation.  Replaces bench_example_a2,
// bench_fig06_pareto, and bench_ablation_determinize.
#include <cmath>

#include "cases/example_system.h"
#include "cases/heuristics.h"
#include "dpm/evaluation.h"
#include "scenario/registry.h"
#include "sim/simulator.h"

namespace dpm::scenario {

namespace {

using cases::ExampleSystem;

// ---------------------------------------------------------------- A.2
Scenario make_example_a2() {
  Scenario sc;
  sc.name = "example_a2";
  sc.title = "Example A.2 (running example, Sections III-IV, Appendix A)";
  sc.what =
      "min power s.t. E[queue] <= 0.5, E[loss] <= 0.2, gamma = 0.99999; "
      "paper: 1.798 W, ~1.67x below always-on, randomized only where "
      "constraints bind";
  sc.units = [](bool /*smoke*/) {
    std::vector<Unit> units;

    units.push_back(Unit{
        "optimization + reference policies", [](UnitContext& ctx) {
          const SystemModel m = ExampleSystem::make_model();
          const PolicyOptimizer opt(m, ExampleSystem::make_config(m));
          ctx.linef("  composed system: %zu states, %zu commands",
                    m.num_states(), m.num_commands());
          ctx.linef("  offered load %.4f, mean burst %.2f slices",
                    m.requester().mean_arrival_rate(),
                    1.0 / m.requester().chain().transition(1, 0));

          const OptimizationResult r = opt.minimize_power(0.5, 0.2);
          ctx.check(r.feasible, "LP4 on the running example is infeasible");
          if (!r.feasible) return;
          ctx.record("optimal power", r.lp_iterations, r.objective_per_step);
          ctx.linef("  optimal expected power [W] (paper 1.798)  %.4f",
                    r.objective_per_step);
          ctx.linef("  achieved E[queue] (bound 0.5)             %.4f",
                    r.constraint_per_step[0]);
          ctx.linef("  achieved E[loss]  (bound 0.2)             %.4f",
                    r.constraint_per_step[1]);
          ctx.check(r.constraint_per_step[0] <= 0.5 + 1e-7,
                    "optimal policy violates the queue bound");
          ctx.check(r.constraint_per_step[1] <= 0.2 + 1e-7,
                    "optimal policy violates the loss bound");
          ctx.check(!r.policy->is_deterministic(1e-6),
                    "Theorem A.2: with active constraints the optimum "
                    "should be randomized");
          for (std::size_t s = 0; s < m.num_states(); ++s) {
            ctx.linef("    %-22s s_on=%7.4f  s_off=%7.4f",
                      m.state_label(s).c_str(), r.policy->probability(s, 0),
                      r.policy->probability(s, 1));
          }

          const double gamma = opt.config().discount;
          const linalg::Vector& p0 = opt.config().initial_distribution;
          const PolicyEvaluation on(
              m, cases::always_on_policy(m, ExampleSystem::kCmdOn), gamma,
              p0);
          const PolicyEvaluation eager(
              m,
              cases::eager_policy(m, ExampleSystem::kCmdOff,
                                  ExampleSystem::kCmdOn),
              gamma, p0);
          const double on_power = on.per_step(metrics::power(m));
          ctx.linef("  always-on power %.4f, eager power %.4f", on_power,
                    eager.per_step(metrics::power(m)));
          ctx.record("always-on power", 0, on_power);
          const double saving = on_power / r.objective_per_step;
          ctx.linef("  saving vs always-on (paper ~1.67x)        %.3fx",
                    saving);
          ctx.check(saving > 1.2 && saving < 2.5,
                    "saving vs always-on drifted outside the paper's "
                    "near-2x band");
          ctx.value("lp/power", r.objective_per_step);
          ctx.value("lp/queue", r.constraint_per_step[0]);
          ctx.value("lp/loss", r.constraint_per_step[1]);
          ctx.value("lp/always_on_power", on_power);
        }});

    units.push_back(Unit{
        "Monte Carlo cross-check (session restart, Fig. 5)",
        [](UnitContext& ctx) {
          const SystemModel m = ExampleSystem::make_model();
          const PolicyOptimizer opt(m, ExampleSystem::make_config(m));
          const OptimizationResult r = opt.minimize_power(0.5, 0.2);
          ctx.check(r.feasible, "LP4 infeasible in the Monte Carlo unit");
          if (!r.feasible) return;
          sim::Simulator simulator(m);
          sim::PolicyController ctl(m, *r.policy);
          sim::SimulationConfig cfg;
          cfg.slices = ctx.slices(1000000, 60000);
          cfg.initial_state = {ExampleSystem::kSpOn, 0, 0};
          cfg.session_restart_prob = 1.0 - opt.config().discount;
          cfg.seed = ctx.seed(1);
          const sim::SimulationResult s = simulator.run(ctl, cfg);
          ctx.record("simulated power", cfg.slices, s.avg_power);
          ctx.linef("  simulated power %.4f (LP %.4f), queue %.4f, "
                    "loss-state rate %.4f",
                    s.avg_power, r.objective_per_step, s.avg_queue_length,
                    s.loss_state_rate);
          const double tol = ctx.smoke() ? 0.25 : 0.08;
          ctx.check(std::abs(s.avg_power - r.objective_per_step) <=
                        tol * r.objective_per_step,
                    "simulated power disagrees with the LP optimum");
          ctx.value("sim/power", s.avg_power);
        }});
    return units;
  };
  // --compare tolerances: the Monte-Carlo record may move when
  // simulation internals change; the LP and closed-form records are
  // near-exact.
  sc.tolerances = {
      {.name_contains = "simulated power", .objective_abs = 0.05,
       .objective_rel = 0.05},
      {.name_contains = "", .objective_abs = 1e-6, .objective_rel = 1e-5},
  };
  return sc;
}

// ------------------------------------------------------------- Fig. 6
Scenario make_fig06() {
  Scenario sc;
  sc.name = "fig06_pareto";
  sc.title = "Figure 6 (Sec. IV-A)";
  sc.what =
      "power/performance Pareto curves under three request-loss "
      "settings; warm-started sweep per series, gamma = 0.99999";
  sc.units = [](bool /*smoke*/) {
    const std::vector<double> queue_bounds{0.10, 0.14, 0.18, 0.22, 0.26,
                                           0.30, 0.35, 0.40, 0.45, 0.50,
                                           0.55, 0.60, 0.70, 0.80};
    struct Series {
      const char* name;
      double loss_bound;
    };
    const Series series[] = {
        {"loss<=0.35", 0.35},   // loose: performance-dominated everywhere
        {"loss<=0.22", 0.22},   // middle: loss plateau, then bends down
        {"loss<=0.165", 0.165}, // tight: flat at max power
    };
    std::vector<Unit> units;
    for (const Series& s : series) {
      SweepSpec spec;
      spec.series = s.name;
      spec.model = [] { return ExampleSystem::make_model(); };
      spec.config = [](const SystemModel& m) {
        return ExampleSystem::make_config(m);
      };
      spec.objective = [](const SystemModel& m) { return metrics::power(m); };
      spec.swept = [](const SystemModel& m) {
        return metrics::queue_length(m);
      };
      spec.swept_name = "queue";
      spec.bounds = queue_bounds;
      const double loss = s.loss_bound;
      spec.fixed = [loss](const SystemModel& m) {
        return std::vector<OptimizationConstraint>{
            {metrics::request_loss(m), loss, "loss"}};
      };
      spec.monotone = Monotone::kNonincreasing;
      spec.smoke_points = 4;
      units.push_back(sweep_unit(std::move(spec)));
    }
    return units;
  };
  sc.check = [](ShapeChecker& c) {
    // The infeasible region: no policy reaches the workload's queue
    // floor at the first grid point.
    c.check(c.get("loss<=0.35/0/feasible") == 0.0,
            "expected an infeasible region below the workload queue floor");
    // The tight-loss curve flattens into a loss-dominated plateau: once
    // past the short performance-dominated head, relaxing the queue
    // bound further buys nothing.
    const std::size_t n_t = c.count("loss<=0.165/points");
    std::size_t first_feasible = n_t;
    for (std::size_t i = 0; i < n_t; ++i) {
      if (c.has("loss<=0.165/" + std::to_string(i) + "/objective")) {
        first_feasible = i;
        break;
      }
    }
    c.check(first_feasible < n_t, "tight-loss curve has no feasible point");
    if (first_feasible < n_t) {
      const std::size_t mid = (first_feasible + n_t - 1) / 2;
      const double tight_mid =
          c.get("loss<=0.165/" + std::to_string(mid) + "/objective");
      const double tight_last = c.get(
          "loss<=0.165/" + std::to_string(n_t - 1) + "/objective");
      c.check(std::abs(tight_mid - tight_last) < 1e-4,
              "tight-loss curve should plateau at its loss-dominated "
              "power level");
    }
    // Curves are ordered: looser loss bound => no more power needed.
    const std::size_t n_l = c.count("loss<=0.35/points");
    if (n_l == 0) return;
    const std::string last = std::to_string(n_l - 1);
    c.check(c.get("loss<=0.35/" + last + "/objective") <=
                c.get("loss<=0.22/" + last + "/objective") + 1e-6,
            "loose-loss curve should lie on or below the middle curve");
    c.check(c.get("loss<=0.22/" + last + "/objective") <=
                c.get("loss<=0.165/" + last + "/objective") + 1e-6,
            "middle curve should lie on or below the tight curve");
  };
  return sc;
}

// ------------------------------------------- Theorem A.2 determinization
Scenario make_ablation_determinize() {
  Scenario sc;
  sc.name = "ablation_determinize";
  sc.title = "Ablation: determinizing the randomized optimum (Theorem A.2)";
  sc.what =
      "argmax-rounded optimal policies vs the true optimum on the "
      "example system: no free determinism";
  sc.units = [](bool /*smoke*/) {
    SweepSpec spec;
    spec.series = "determinize";
    spec.model = [] { return ExampleSystem::make_model(); };
    spec.config = [](const SystemModel& m) {
      return ExampleSystem::make_config(m, 0.999);
    };
    spec.objective = [](const SystemModel& m) { return metrics::power(m); };
    spec.swept = [](const SystemModel& m) { return metrics::queue_length(m); };
    spec.swept_name = "queue";
    spec.bounds = {0.2, 0.3, 0.4, 0.5, 0.6};
    spec.monotone = Monotone::kNonincreasing;
    spec.smoke_points = 3;
    spec.inspect = [](const SystemModel& m, const PolicyOptimizer& opt,
                      const std::vector<PolicyOptimizer::ParetoPoint>& curve,
                      UnitContext& ctx) {
      const double gamma = opt.config().discount;
      const linalg::Vector& p0 = opt.config().initial_distribution;
      for (const auto& pt : curve) {
        if (!pt.feasible) continue;
        const Policy rounded = cases::determinize(*pt.policy);
        const PolicyEvaluation ev(m, rounded, gamma, p0);
        const double rq = ev.per_step(metrics::queue_length(m));
        const double rp = ev.per_step(metrics::power(m));
        const bool violates = rq > pt.bound + 1e-9;
        ctx.linef("  q<=%-6.2f opt %8.4f | rounded %8.4f W, queue %8.4f%s",
                  pt.bound, pt.objective, rp, rq,
                  violates ? "  VIOLATES" : "");
        ctx.check(violates || rp >= pt.objective - 1e-6,
                  "a rounded policy beat the optimum without violating its "
                  "constraint (contradicts Theorem A.2)");
      }
      // How much randomization does the optimum actually use?  LP
      // theory: at most one randomized state per active constraint
      // beyond the balance equations.
      if (!curve.empty() && curve.back().feasible) {
        const auto& pt = curve[curve.size() / 2];
        if (pt.feasible) {
          std::size_t randomized_rows = 0;
          for (std::size_t s = 0; s < m.num_states(); ++s) {
            double reach = 0.0;
            for (std::size_t a = 0; a < m.num_commands(); ++a) {
              reach += pt.frequencies[s * m.num_commands() + a];
            }
            if (reach < 1e-9) continue;
            double max_p = 0.0;
            for (std::size_t a = 0; a < m.num_commands(); ++a) {
              max_p = std::max(max_p, pt.policy->probability(s, a));
            }
            if (max_p < 1.0 - 1e-6) ++randomized_rows;
          }
          ctx.linef("  randomized decisions in %zu of %zu states at "
                    "q<=%.2f",
                    randomized_rows, m.num_states(), pt.bound);
          ctx.record("randomized states", randomized_rows,
                     static_cast<double>(randomized_rows));
          ctx.check(randomized_rows <= 2,
                    "more randomized states than active constraints "
                    "(LP basic-solution structure violated)");
        }
      }
    };
    std::vector<Unit> units;
    units.push_back(sweep_unit(std::move(spec)));
    return units;
  };
  return sc;
}

}  // namespace

void register_example_scenarios() {
  add(make_example_a2());
  add(make_fig06());
  add(make_ablation_determinize());
}

}  // namespace dpm::scenario
