// Scenario registrations for the SA-1100 CPU case study: Fig. 9(b)
// (optimum vs timeouts), Fig. 10 / Example 7.1 (nonstationary
// workload), and the adaptive re-optimization extension (Sec. VIII).
// Replaces bench_fig09b_cpu, bench_fig10_nonstationary, bench_adaptive.
#include <cmath>
#include <memory>
#include <string>

#include "cases/cpu_sa1100.h"
#include "scenario/registry.h"
#include "sim/adaptive_controller.h"
#include "sim/simulator.h"
#include "trace/generators.h"
#include "trace/sr_extractor.h"

namespace dpm::scenario {

namespace {

using cases::CpuSa1100;

constexpr double kCpuGamma = 0.9999;

// ------------------------------------------------------------ Fig. 9b
Scenario make_fig09b() {
  Scenario sc;
  sc.name = "fig09b_cpu";
  sc.title = "Figure 9(b) (Sec. VI-C)";
  sc.what =
      "ARM SA-1100 CPU, tau = 50 ms, reactive wake-up: optimum "
      "stochastic control (solid) vs timeout shutdown (dashed), penalty "
      "= Pr{request while sleeping}";
  sc.units = [](bool smoke) {
    std::vector<Unit> units;
    {
      SweepSpec spec;
      spec.series = "optimal";
      spec.model = [] { return CpuSa1100::make_model(/*seed=*/11); };
      spec.config = [](const SystemModel& m) {
        return CpuSa1100::make_config(m, kCpuGamma);
      };
      spec.objective = [](const SystemModel& m) { return metrics::power(m); };
      spec.swept = [](const SystemModel& m) { return CpuSa1100::penalty(m); };
      spec.swept_name = "penalty";
      spec.bounds = {0.005, 0.01, 0.015, 0.02, 0.025, 0.03, 0.04, 0.06};
      spec.monotone = Monotone::kNonincreasing;
      spec.smoke_points = 3;
      units.push_back(sweep_unit(std::move(spec)));
    }

    const std::vector<std::size_t> timeouts =
        smoke ? std::vector<std::size_t>{0, 10, 100}
              : std::vector<std::size_t>{0, 2, 5, 10, 20, 50, 100};
    units.push_back(Unit{"timeout heuristic (dashed line)",
                         [timeouts](UnitContext& ctx) {
      const SystemModel m = CpuSa1100::make_model(/*seed=*/11);
      const StateActionMetric pen = CpuSa1100::penalty(m);
      sim::Simulator simulator(m);
      for (std::size_t k = 0; k < timeouts.size(); ++k) {
        const std::size_t timeout = timeouts[k];
        sim::TimeoutController ctl(timeout, CpuSa1100::kShutdown,
                                   CpuSa1100::kRun);
        sim::SimulationConfig cfg;
        cfg.slices = ctx.slices(400000);
        cfg.warmup = 2000;
        cfg.initial_state = {CpuSa1100::kActive, 0, 0};
        cfg.seed = ctx.seed(k);
        const sim::SimulationResult s = simulator.run(ctl, cfg);
        ctx.linef("  timeout %-8zu %10.4f W  penalty %8.4f", timeout,
                  s.avg_power, s.metric(pen));
        ctx.record("timeout " + std::to_string(timeout), cfg.slices,
                   s.avg_power);
        const std::string key = "timeout/" + std::to_string(k);
        ctx.value(key + "/power", s.avg_power);
        ctx.value(key + "/penalty", s.metric(pen));
      }
      ctx.value("timeout/count", static_cast<double>(timeouts.size()));
    }});
    return units;
  };

  // The paper's claim: at every penalty level the optimal curve needs
  // less power than the timeout achieving that penalty (3% + 5 mW of
  // slack absorbs the timeouts' Monte-Carlo noise).
  sc.check = [](ShapeChecker& c) {
    const std::vector<CurvePoint> curve = collect_curve(c, "optimal");
    const std::size_t timeouts = c.count("timeout/count");
    for (std::size_t k = 0; k < timeouts; ++k) {
      const std::string key = "timeout/" + std::to_string(k);
      check_curve_dominates(c, curve, c.get(key + "/penalty"),
                            c.get(key + "/power"), 0.03, 0.005,
                            "timeout heuristic " + std::to_string(k));
    }
  };
  // --compare tolerances: simulated timeout points carry Monte-Carlo
  // noise; pivot summaries track solver tuning; LP curve points are
  // near-exact.
  sc.tolerances = {
      {.name_contains = "timeout", .objective_abs = 0.01,
       .objective_rel = 0.05},
      {.name_contains = "pivots", .objective_abs = 50.0,
       .objective_rel = 1.0},
      {.name_contains = "", .objective_abs = 1e-6, .objective_rel = 1e-5},
  };
  return sc;
}

// ------------------------------------------------------------- Fig. 10
Scenario make_fig10() {
  Scenario sc;
  sc.name = "fig10_nonstationary";
  sc.title = "Figure 10 / Example 7.1 (Sec. VII)";
  sc.what =
      "CPU model under a nonstationary editing+compilation workload; "
      "stationary-fit optimal policies and timeouts, both simulated on "
      "the raw trace (the paper's cautionary result)";

  sc.units = [](bool smoke) {
    const std::size_t half = smoke ? 40000 : 300000;
    // One fixed workload for the whole scenario: generate it once and
    // share it read-only across the units.
    const auto mix_ptr = std::make_shared<const std::vector<unsigned>>(
        trace::concat_streams(trace::editing_stream(half, 5),
                              trace::compilation_stream(half, 6)));

    std::vector<Unit> units;
    units.push_back(Unit{"the two regimes differ", [mix_ptr,
                                                    half](UnitContext& ctx) {
      const std::vector<unsigned>& mix = *mix_ptr;
      const trace::StreamStats edit = trace::analyze_stream(
          {mix.begin(), mix.begin() + static_cast<std::ptrdiff_t>(half)});
      const trace::StreamStats comp = trace::analyze_stream(
          {mix.begin() + static_cast<std::ptrdiff_t>(half), mix.end()});
      ctx.linef("  editing     request rate %.4f", edit.request_rate);
      ctx.linef("  compilation request rate %.4f", comp.request_rate);
      ctx.check(comp.request_rate > 2.0 * edit.request_rate,
                "the compilation regime should be much busier than "
                "editing (the nonstationarity the figure depends on)");
    }});

    {
      SweepSpec spec;
      spec.series = "fitted-optimal";
      spec.model = [mix_ptr] {
        return CpuSa1100::make_model_from_stream(*mix_ptr);
      };
      spec.config = [](const SystemModel& m) {
        return CpuSa1100::make_config(m, kCpuGamma);
      };
      spec.objective = [](const SystemModel& m) { return metrics::power(m); };
      spec.swept = [](const SystemModel& m) { return CpuSa1100::penalty(m); };
      spec.swept_name = "penalty";
      spec.bounds = {0.005, 0.01, 0.02, 0.04, 0.08};
      spec.monotone = Monotone::kNonincreasing;
      spec.smoke_points = 2;
      // Simulate each fitted-optimal policy on the RAW trace: the
      // points drift off the model predictions — stationary-Markov
      // optimality does not survive a nonstationary workload.
      spec.inspect = [mix_ptr](
                         const SystemModel& m, const PolicyOptimizer&,
                         const std::vector<PolicyOptimizer::ParetoPoint>&
                             curve,
                         UnitContext& ctx) {
        const std::vector<unsigned>& mix = *mix_ptr;
        const StateActionMetric pen = CpuSa1100::penalty(m);
        sim::Simulator simulator(m);
        for (std::size_t i = 0; i < curve.size(); ++i) {
          const auto& pt = curve[i];
          if (!pt.feasible) continue;
          sim::PolicyController ctl(m, *pt.policy);
          sim::SimulationConfig cfg;
          cfg.slices = mix.size();
          cfg.initial_state = {CpuSa1100::kActive, 0, 0};
          cfg.seed = ctx.seed(10 + i);
          const sim::SimulationResult s = simulator.run_trace(ctl, mix, cfg);
          ctx.linef("  pen<=%-7.3f model %8.4f W / %7.4f pen; trace "
                    "%8.4f W / %7.4f pen",
                    pt.bound, pt.objective, pt.constraint_per_step.back(),
                    s.avg_power, s.metric(pen));
          ctx.record("trace pen<=" + std::to_string(pt.bound), cfg.slices,
                     s.avg_power);
          // The trace-measured behaviour stays in the right ballpark
          // even though the bound itself may be violated.
          ctx.check(s.avg_power > 0.0 &&
                        s.avg_power < 3.0 * (pt.objective + 0.05),
                    "trace-driven power diverged wildly from the fitted "
                    "model at pen<=" + std::to_string(pt.bound));
        }
      };
      units.push_back(sweep_unit(std::move(spec)));
    }

    const std::vector<std::size_t> timeouts =
        smoke ? std::vector<std::size_t>{0, 10}
              : std::vector<std::size_t>{0, 2, 5, 10, 20, 50};
    units.push_back(Unit{"timeouts on the raw trace",
                         [timeouts, mix_ptr](UnitContext& ctx) {
      const std::vector<unsigned>& mix = *mix_ptr;
      const SystemModel m = CpuSa1100::make_model_from_stream(mix);
      const StateActionMetric pen = CpuSa1100::penalty(m);
      sim::Simulator simulator(m);
      for (std::size_t k = 0; k < timeouts.size(); ++k) {
        sim::TimeoutController ctl(timeouts[k], CpuSa1100::kShutdown,
                                   CpuSa1100::kRun);
        sim::SimulationConfig cfg;
        cfg.slices = mix.size();
        cfg.initial_state = {CpuSa1100::kActive, 0, 0};
        cfg.seed = ctx.seed(k);
        const sim::SimulationResult s = simulator.run_trace(ctl, mix, cfg);
        ctx.linef("  timeout %-8zu trace %8.4f W  penalty %8.4f",
                  timeouts[k], s.avg_power, s.metric(pen));
        ctx.record("timeout " + std::to_string(timeouts[k]), cfg.slices,
                   s.avg_power);
      }
    }});
    return units;
  };
  return sc;
}

// ------------------------------------------------------------ adaptive
struct AdaptiveParams {
  std::size_t half = 120000;
  std::size_t warmup = 2000;
  std::size_t window = 15000;
  std::size_t reoptimize_every = 4000;
};

sim::AdaptiveController make_adaptive(double penalty_bound,
                                      const AdaptiveParams& p) {
  sim::AdaptiveController::Options o;
  o.warmup = p.warmup;
  o.window = p.window;
  o.reoptimize_every = p.reoptimize_every;
  return sim::AdaptiveController(
      [](const std::vector<unsigned>& w) {
        return trace::extract_sr(w, {.memory = 1, .smoothing = 1.0});
      },
      [](ServiceRequester sr) {
        ServiceProvider sp = CpuSa1100::make_provider();
        SpTransitionOverride ov = CpuSa1100::make_override(sp);
        return SystemModel::compose(std::move(sp), std::move(sr), 0,
                                    std::move(ov));
      },
      [penalty_bound](const SystemModel& mm) -> std::optional<Policy> {
        const PolicyOptimizer oo(mm, CpuSa1100::make_config(mm, kCpuGamma));
        OptimizationResult r =
            oo.minimize(metrics::power(mm),
                        {{CpuSa1100::penalty(mm), penalty_bound, "pen"}});
        if (!r.feasible) return std::nullopt;
        return std::move(r.policy);
      },
      CpuSa1100::kRun, o);
}

Scenario make_adaptive_scenario() {
  Scenario sc;
  sc.name = "adaptive";
  sc.title = "Extension: adaptive re-optimization (Sec. VIII future work)";
  sc.what =
      "sliding-window SR re-fit + LP re-solve vs the static "
      "stationary-fit optimum on the Fig. 10 workload; the adaptive "
      "controller honours the penalty bound in every regime";

  sc.units = [](bool smoke) {
    AdaptiveParams p;
    if (smoke) {
      p.half = 25000;
      p.warmup = 1000;
      p.window = 8000;
      p.reoptimize_every = 3000;
    }
    const double bound = 0.01;
    const char* regimes[] = {"editing", "compilation", "mixture"};

    // The three regime traces, generated once and shared read-only by
    // every unit (the mixture is also the model-fitting input).
    struct Traces {
      std::vector<unsigned> editing, compilation, mixture;
    };
    auto traces = std::make_shared<const Traces>([p] {
      Traces t;
      t.editing = trace::editing_stream(p.half, 5);
      t.compilation = trace::compilation_stream(p.half, 6);
      t.mixture = trace::concat_streams(t.editing, t.compilation);
      return t;
    }());
    const auto regime_trace =
        [traces](const std::string& regime) -> const std::vector<unsigned>& {
      if (regime == "editing") return traces->editing;
      if (regime == "compilation") return traces->compilation;
      return traces->mixture;
    };

    std::vector<Unit> units;
    units.push_back(Unit{"static stationary-fit optimum",
                         [p, bound, regime_trace](UnitContext& ctx) {
      const std::vector<unsigned>& mix = regime_trace("mixture");
      const SystemModel m = CpuSa1100::make_model_from_stream(mix);
      const PolicyOptimizer opt(m, CpuSa1100::make_config(m, kCpuGamma));
      const StateActionMetric pen = CpuSa1100::penalty(m);
      const OptimizationResult st =
          opt.minimize(metrics::power(m), {{pen, bound, "pen"}});
      ctx.check(st.feasible, "static optimization infeasible (unexpected)");
      if (!st.feasible) return;
      sim::Simulator simulator(m);
      const char* regimes[] = {"editing", "compilation", "mixture"};
      for (std::size_t k = 0; k < 3; ++k) {
        const std::vector<unsigned>& t = regime_trace(regimes[k]);
        sim::PolicyController sc_ctl(m, *st.policy);
        sim::SimulationConfig cfg;
        cfg.slices = t.size();
        cfg.initial_state = {CpuSa1100::kActive, 0, 0};
        cfg.seed = ctx.seed(k);
        const sim::SimulationResult r = simulator.run_trace(sc_ctl, t, cfg);
        ctx.linef("  static  %-12s %8.4f W  penalty %8.4f%s", regimes[k],
                  r.avg_power, r.metric(pen),
                  r.metric(pen) <= bound * 1.05 ? "" : "  OUT OF SPEC");
        ctx.record(std::string("static ") + regimes[k], cfg.slices,
                   r.avg_power);
        ctx.value(std::string("static/") + regimes[k] + "/penalty",
                  r.metric(pen));
        ctx.value(std::string("static/") + regimes[k] + "/power",
                  r.avg_power);
      }
    }});

    for (std::size_t k = 0; k < 3; ++k) {
      const std::string regime = regimes[k];
      units.push_back(Unit{"adaptive controller on " + regime,
                           [p, bound, regime, regime_trace,
                            k](UnitContext& ctx) {
        const std::vector<unsigned>& t = regime_trace(regime);
        // The simulation still needs a model for SP dynamics; fit it
        // from the mixture exactly like the static controller's.
        const SystemModel m =
            CpuSa1100::make_model_from_stream(regime_trace("mixture"));
        const StateActionMetric pen = CpuSa1100::penalty(m);
        sim::Simulator simulator(m);
        sim::AdaptiveController ac = make_adaptive(bound, p);
        sim::SimulationConfig cfg;
        cfg.slices = t.size();
        cfg.initial_state = {CpuSa1100::kActive, 0, 0};
        cfg.seed = ctx.seed(10 + k);
        const sim::SimulationResult r = simulator.run_trace(ac, t, cfg);
        ctx.linef("  adaptive %-12s %8.4f W  penalty %8.4f  (refits %zu)",
                  regime.c_str(), r.avg_power, r.metric(pen),
                  ac.refit_count());
        ctx.record("adaptive " + regime, cfg.slices, r.avg_power);
        ctx.value("adaptive/" + regime + "/penalty", r.metric(pen));
        ctx.value("adaptive/" + regime + "/power", r.avg_power);
        ctx.check(ac.refit_count() > 0,
                  "the adaptive controller never re-optimized");
      }});
    }
    return units;
  };

  sc.check = [](ShapeChecker& c) {
    // The adaptive controller honours the bound in every regime (with
    // Monte-Carlo slack); the static fit overshoots during editing.
    const double bound = 0.01;
    for (const char* regime : {"editing", "compilation", "mixture"}) {
      c.check(c.get(std::string("adaptive/") + regime + "/penalty") <=
                  bound * 1.5,
              std::string("adaptive controller out of spec in ") + regime);
    }
    c.check(c.get("adaptive/editing/penalty") <=
                c.get("static/editing/penalty") + 0.002,
            "adaptive should at least match the static policy's penalty "
            "in the editing regime (where the static fit overshoots)");
  };
  return sc;
}

}  // namespace

void register_cpu_scenarios() {
  add(make_fig09b());
  add(make_fig10());
  add(make_adaptive_scenario());
}

}  // namespace dpm::scenario
