// Scenario registry: every paper figure / ablation / extension is a
// named Scenario; new workloads cost one registration, not a new
// binary.  The `bench_scenarios` multiplexer, the smoke tests, and the
// gtest registry suite all run off this single table.
#pragma once

#include <string_view>
#include <vector>

#include "scenario/scenario.h"

namespace dpm::scenario {

/// Registers a scenario; throws std::invalid_argument on a duplicate
/// name or a scenario without a unit factory.
void add(Scenario scenario);

/// All registered scenarios, in registration order.
const std::vector<Scenario>& all();

/// Lookup by exact name; nullptr when absent.
const Scenario* find(std::string_view name);

/// Registers every built-in paper scenario (idempotent).  Call this
/// before `all()`/`find()` in mains and tests; registrations are plain
/// function calls, not static initializers, so nothing depends on
/// link-order or --whole-archive.
void register_builtin();

// Per-family registration functions (scenario/scenarios_*.cpp).  NOT
// idempotent (add() throws on duplicates) — call them only through
// register_builtin(); they are declared here so register_builtin can
// live apart from the registration translation units.
void register_example_scenarios();      // example_a2, fig06, determinize
void register_disk_scenarios();         // fig08_disk, po1_duality
void register_cpu_scenarios();          // fig09b, fig10, adaptive
void register_webserver_scenarios();    // fig09a
void register_sensitivity_scenarios();  // fig12a/b, fig13a/b, fig14a/b
void register_extension_scenarios();    // average_cost
void register_serve_scenarios();        // serve (dpmd fleet mix)

}  // namespace dpm::scenario
