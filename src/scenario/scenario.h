// Declarative scenario engine (the "as many scenarios as you can
// imagine" layer of the ROADMAP).
//
// A Scenario packages one paper experiment — a figure, a table, an
// ablation, an extension — as data: a name, a banner, and a factory
// that expands into *units*, the parallel quantum of the
// ExperimentRunner (scenario/runner.h).  Each unit runs on one worker
// thread with its own deterministic RNG stream derived from
// (scenario name, unit index), so results are byte-identical no matter
// how many workers execute the grid.
//
// Two declarative unit builders cover the paper's grids:
//  * sweep_unit — a constraint sweep over ONE model: the LP is built
//    once and every point after the first warm-starts from the previous
//    optimal basis (PolicyOptimizer::sweep).  One series == one unit,
//    because warm starts chain points sequentially.
//  * point_unit — one cell of a structural grid (Figs. 12-14: sleep
//    states, transition speeds, burstiness, memory, horizon, queue
//    capacity).  Every cell builds its own model, so cells are
//    embarrassingly parallel.
// Simulation-flavoured work (trace-driven circles, timeout heuristics,
// adaptive controllers) uses plain units with hand-written bodies.
//
// Expected-shape assertions live in two places: `UnitContext::check`
// for claims local to a unit, and `Scenario::check` for claims that
// relate units (an optimal curve lower-bounding heuristic points, say),
// fed by the key/value pairs units publish with `UnitContext::value`.
// A failed check fails the scenario run (and hence the smoke tests).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "dpm/optimizer.h"
#include "scenario/report.h"
#include "sim/hash.h"
#include "sim/rng.h"

namespace dpm::scenario {

using Record = JsonRecord;

/// Version of the result semantics: what a record's fields *mean* and
/// which algorithms produce them.  It is folded into every unit's cache
/// key, so bumping it invalidates the whole on-disk result cache —
/// required whenever a change legitimately moves results (solver
/// behavior, record naming, simulation semantics).  The golden-baseline
/// update procedure in docs/bench-format.md pairs such a bump with
/// regenerated baselines.
inline constexpr std::uint64_t kResultSchemaVersion = 1;

/// Everything a unit body may produce; assembled by the runner in unit
/// order, so output and JSON are independent of scheduling.
struct UnitOutput {
  std::vector<Record> records;
  std::vector<std::string> lines;     // human-readable table rows
  std::vector<std::string> failures;  // failed expected-shape assertions
  std::vector<std::pair<std::string, double>> values;  // cross-unit facts
  double wall_ms = 0.0;               // real time (stdout only, not JSON)
};

/// Handed to a unit body while it runs on a worker thread.
class UnitContext {
 public:
  UnitContext(std::string scenario_name, std::size_t unit_index, bool smoke)
      : scenario_(std::move(scenario_name)),
        index_(unit_index),
        smoke_(smoke),
        rng_(sim::derive_seed(scenario_, unit_index)) {}

  bool smoke() const noexcept { return smoke_; }

  /// Deterministic seed for this unit: a pure function of
  /// (scenario name, unit index, salt) — never of the worker thread.
  std::uint64_t seed(std::uint64_t salt = 0) const {
    return sim::derive_seed(scenario_, index_, salt);
  }

  /// The unit's own PRNG stream (seeded with seed(0)).
  sim::Rng& rng() noexcept { return rng_; }

  /// Monte-Carlo length helper: the full slice count, shrunk under
  /// --smoke so every scenario's smoke grid stays test-suite fast.
  std::size_t slices(std::size_t full, std::size_t smoke = 30000) const {
    return smoke_ ? std::min(full, smoke) : full;
  }

  /// Emits one record of the shared BENCH_*.json schema (wall_ms is
  /// fixed at 0 so the JSON is deterministic across --jobs settings).
  void record(std::string name, std::size_t iterations, double objective) {
    out_.records.push_back({std::move(name), 0.0, iterations, objective});
  }

  /// Buffered stdout line (printed in unit order by the runner).
  void line(std::string text) { out_.lines.push_back(std::move(text)); }
  void linef(const char* fmt, ...)
#if defined(__GNUC__)
      __attribute__((format(printf, 2, 3)))
#endif
      ;

  /// Publishes a named number for cross-unit shape checks.
  void value(std::string key, double v) {
    out_.values.emplace_back(std::move(key), v);
  }

  /// Expected-shape assertion; a failure fails the scenario run.
  void check(bool ok, std::string what) {
    if (!ok) out_.failures.push_back(std::move(what));
  }

  const std::string& scenario() const noexcept { return scenario_; }
  std::size_t unit_index() const noexcept { return index_; }
  UnitOutput& output() noexcept { return out_; }

 private:
  std::string scenario_;
  std::size_t index_;
  bool smoke_;
  sim::Rng rng_;
  UnitOutput out_;
};

/// The parallel quantum: a labelled body the runner executes on one
/// worker thread.
struct Unit {
  Unit() = default;
  Unit(std::string label_, std::function<void(UnitContext&)> run_,
       std::function<void(sim::Fnv1a&, bool)> fingerprint_ = nullptr)
      : label(std::move(label_)),
        run(std::move(run_)),
        fingerprint(std::move(fingerprint_)) {}

  std::string label;
  std::function<void(UnitContext&)> run;
  /// Optional content fingerprint: streams the unit's *inputs* — the
  /// composed model, optimizer config, LP content, grid points — into
  /// `h`, making the unit's cache key a content address (see
  /// Scenario::unit_key and scenario/cache.h).  sweep_unit and
  /// point_unit install one automatically.  Hand-written units may
  /// leave it empty; their key then degrades to (schema version,
  /// scenario, unit index, label, smoke flag), which still replays
  /// correctly across reruns of one build and is invalidated by
  /// kResultSchemaVersion bumps on semantic changes.
  std::function<void(sim::Fnv1a& h, bool smoke)> fingerprint;
};

/// Read-side of the cross-unit value store for Scenario::check.
class ShapeChecker {
 public:
  explicit ShapeChecker(std::map<std::string, double> values)
      : values_(std::move(values)) {}

  bool has(const std::string& key) const { return values_.count(key) != 0; }

  /// Looks a published value up; a missing key records a failure and
  /// returns NaN so dependent comparisons fail loudly, not silently.
  double get(const std::string& key) {
    const auto it = values_.find(key);
    if (it != values_.end()) return it->second;
    failures_.push_back("shape check referenced missing value '" + key + "'");
    return std::numeric_limits<double>::quiet_NaN();
  }

  /// get() for values used as loop bounds/indices: returns 0 (and
  /// records the failure) when the key is missing, so callers never
  /// convert the NaN sentinel to an integer (UB).  A unit that died
  /// before publishing its counts then yields an empty loop plus a
  /// missing-key failure instead of undefined behaviour.
  std::size_t count(const std::string& key) {
    const double v = get(key);
    if (!(v >= 0.0)) return 0;  // NaN or negative
    return static_cast<std::size_t>(v);
  }

  void check(bool ok, std::string what) {
    if (!ok) failures_.push_back(std::move(what));
  }

  const std::map<std::string, double>& values() const noexcept {
    return values_;
  }
  std::vector<std::string> take_failures() { return std::move(failures_); }

 private:
  std::map<std::string, double> values_;
  std::vector<std::string> failures_;
};

/// One comparator tolerance rule (scenario/compare.h): how far a
/// record's fields may drift from a baseline before --compare fails.
/// Declared per scenario next to its expected-shape assertions; the
/// first rule whose `name_contains` is a substring of the record name
/// wins, and records matching no rule use the defaults below.
///
/// Defaults suit deterministic LP records: objectives near-exact (the
/// 1e-7 relative slack absorbs refactor-level FP reassociation),
/// iteration counts loose (pivot counts legitimately move with solver
/// tuning; only order-of-magnitude blowups — a lost warm start — should
/// fail).  Monte-Carlo records need scenario-declared looser rules.
struct ToleranceRule {
  std::string name_contains;  // "" matches every record
  double objective_abs = 1e-9;
  double objective_rel = 1e-7;
  double iterations_abs = 50.0;
  double iterations_rel = 1.0;
};

/// One declarative experiment.  `units(smoke)` expands the grid; the
/// optional `check` runs after every unit finished, over the merged
/// value store.
struct Scenario {
  std::string name;   // registry key, e.g. "fig08_disk"
  std::string title;  // banner, e.g. "Table I + Figure 8(b) (Sec. VI-A)"
  std::string what;   // one-line description for --list
  std::function<std::vector<Unit>(bool smoke)> units;
  std::function<void(ShapeChecker&)> check;  // may be empty
  /// --compare tolerance rules, searched in declaration order (see
  /// ToleranceRule); empty means every record uses the defaults.
  std::vector<ToleranceRule> tolerances;

  /// Content-address of one unit: H(schema version, scenario name, unit
  /// index, label, smoke flag, unit fingerprint).  Expands `units(smoke)`
  /// to reach the unit; the runner, which already holds the expansion,
  /// uses the free `unit_key()` below.  `schema_version` is exposed for
  /// the property tests; production callers keep the default.
  std::uint64_t unit_key(
      std::size_t index, bool smoke,
      std::uint64_t schema_version = kResultSchemaVersion) const;
};

/// unit_key for an already-expanded unit (same value as the member).
std::uint64_t unit_key(const Scenario& sc, const Unit& unit,
                       std::size_t index, bool smoke,
                       std::uint64_t schema_version = kResultSchemaVersion);

// ---------------------------------------------------------------------
// Declarative builders
// ---------------------------------------------------------------------

enum class Monotone { kNone, kNonincreasing, kNondecreasing };

/// A warm-started Pareto/constraint sweep over one model: the
/// declarative core of Figs. 6, 8(b), 9(a), 9(b), 10 and the ablations.
/// Routed through PolicyOptimizer::sweep(), so every point after the
/// first restarts from the previous optimal basis; the unit records
/// per-point objectives/pivots plus cold-vs-warm pivot counts.
struct SweepSpec {
  std::string series;  // record-name prefix, unique within the scenario
  std::function<SystemModel()> model;
  std::function<OptimizerConfig(const SystemModel&)> config;
  std::function<StateActionMetric(const SystemModel&)> objective;
  std::function<StateActionMetric(const SystemModel&)> swept;
  std::string swept_name = "bound";
  std::vector<double> bounds;  // per-step bounds, in sweep order
  /// Fixed constraints held at every point (may be empty/null).
  std::function<std::vector<OptimizationConstraint>(const SystemModel&)>
      fixed;
  /// Pretty-printer for a bound (defaults to "%g"); Fig. 9a uses it to
  /// show "thpt>=t" for a bound stored as -t.
  std::function<std::string(double)> bound_label;
  /// Post-sweep hook on the same worker: simulation circles, structural
  /// inspection of pt.frequencies, extra per-point checks.
  std::function<void(const SystemModel&, const PolicyOptimizer&,
                     const std::vector<PolicyOptimizer::ParetoPoint>&,
                     UnitContext&)>
      inspect;
  /// Number of grid points kept under --smoke (evenly spaced subset,
  /// endpoints included); 0 keeps the full grid.
  std::size_t smoke_points = 3;
  /// Expected curve shape along the listed bound order.
  Monotone monotone = Monotone::kNone;
  /// When true, at least one point must be feasible (default).
  bool expect_some_feasible = true;
};

Unit sweep_unit(SweepSpec spec);

/// One independent cell of a structural grid: its own model, one cold
/// solve.  Cells parallelize freely because nothing is shared.
struct PointSpec {
  std::string name;  // record name, unique within the scenario
  std::function<SystemModel()> model;
  std::function<OptimizerConfig(const SystemModel&)> config;
  std::function<StateActionMetric(const SystemModel&)> objective;
  std::function<std::vector<OptimizationConstraint>(const SystemModel&)>
      constraints;
  bool expect_feasible = false;
};

Unit point_unit(PointSpec spec);

/// Evenly spaced subset of `bounds` (endpoints included) for smoke
/// grids; k == 0 or k >= size keeps everything.
std::vector<double> smoke_subset(const std::vector<double>& bounds,
                                 std::size_t k);

/// One feasible point of a sweep series, as published to the value
/// store by sweep_unit ("<series>/<i>/{bound,objective,feasible}").
struct CurvePoint {
  double bound = 0.0;
  double objective = 0.0;
};

/// Collects a series' feasible points back out of the value store for
/// cross-unit shape checks; records a failure when the series is empty.
std::vector<CurvePoint> collect_curve(ShapeChecker& c,
                                      const std::string& series);

/// The Fig. 8b / Fig. 9b dominance claim: the optimal curve lower-
/// bounds a (possibly simulated) reference point.  Finds the tightest
/// swept bound the point's achieved metric also satisfies and checks
/// the optimum there needs no more than the point's objective plus
/// slack (relative + absolute, absorbing Monte-Carlo noise).  No-op
/// when the point lies outside the swept grid.
void check_curve_dominates(ShapeChecker& c,
                           const std::vector<CurvePoint>& curve,
                           double point_metric, double point_objective,
                           double rel_slack, double abs_slack,
                           const std::string& what);

}  // namespace dpm::scenario
