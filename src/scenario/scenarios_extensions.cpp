// Scenario registration for the average-cost extension: the paper's
// Eq. 7 formulation solved directly, without a discount, and its
// agreement with the discounted (Eq. 9) optima as gamma -> 1.
// Replaces bench_average_cost.
#include <cmath>
#include <string>

#include "cases/disk_drive.h"
#include "cases/example_system.h"
#include "cases/sensitivity.h"
#include "dpm/average_optimizer.h"
#include "scenario/registry.h"

namespace dpm::scenario {

namespace {

namespace sens = cases::sensitivity;

Scenario make_average_cost() {
  Scenario sc;
  sc.name = "average_cost";
  sc.title = "Extension: average-cost optimization (paper Eq. 7)";
  sc.what =
      "stationary-distribution LP vs the discounted (Eq. 9) "
      "formulation: the discounted optima converge to the horizon-free "
      "optimum as gamma -> 1";

  sc.units = [](bool smoke) {
    std::vector<Unit> units;

    units.push_back(Unit{
        "example system: discounted -> average convergence",
        [smoke](UnitContext& ctx) {
          const SystemModel m = cases::ExampleSystem::make_model();
          const AverageCostOptimizer avg(m);
          const OptimizationResult a = avg.minimize_power(0.45, 0.25);
          ctx.check(a.feasible, "average-cost LP infeasible on the example");
          if (!a.feasible) return;
          ctx.record("example average-cost", a.lp_iterations,
                     a.objective_per_step);
          ctx.linef("  average-cost optimum      %10.5f W",
                    a.objective_per_step);
          const std::vector<double> gammas =
              smoke ? std::vector<double>{0.99, 0.9999999}
                    : std::vector<double>{0.99, 0.999, 0.9999, 0.99999,
                                          0.9999999};
          double closest = -1.0;
          for (const double gamma : gammas) {
            const PolicyOptimizer d(
                m, cases::ExampleSystem::make_config(m, gamma));
            const OptimizationResult r = d.minimize_power(0.45, 0.25);
            ctx.linef("  discounted gamma=%-9.7f %10.5f W", gamma,
                      r.feasible ? r.objective_per_step : -1.0);
            if (r.feasible) closest = r.objective_per_step;
          }
          ctx.check(closest > 0.0 &&
                        std::abs(closest - a.objective_per_step) <=
                            0.01 * a.objective_per_step,
                    "discounted optimum at gamma ~ 1 failed to converge "
                    "to the average-cost optimum");
          ctx.value("example/average", a.objective_per_step);
          ctx.value("example/discounted_limit", closest);
        }});

    units.push_back(Unit{
        "disk drive: the two formulations agree at gamma ~ 1",
        [](UnitContext& ctx) {
          const SystemModel m = cases::DiskDrive::make_model();
          const AverageCostOptimizer avg(m);
          const OptimizationResult a = avg.minimize_power(0.4, 0.05);
          ctx.check(a.feasible, "average-cost LP infeasible on the disk");
          const PolicyOptimizer d(m,
                                  cases::DiskDrive::make_config(m, 0.99999));
          const OptimizationResult r = d.minimize_power(0.4, 0.05);
          ctx.check(r.feasible, "discounted LP infeasible on the disk");
          if (!a.feasible || !r.feasible) return;
          ctx.record("disk average-cost", a.lp_iterations,
                     a.objective_per_step);
          ctx.record("disk discounted 1e5", r.lp_iterations,
                     r.objective_per_step);
          ctx.linef("  average-cost %10.5f W, discounted(1e5) %10.5f W",
                    a.objective_per_step, r.objective_per_step);
          ctx.check(std::abs(a.objective_per_step - r.objective_per_step) <=
                        0.05 * a.objective_per_step,
                    "disk: discounted(1e5) and average-cost optima "
                    "disagree by more than 5%");
        }});

    units.push_back(Unit{
        "Fig. 14(a) revisited without the end-game artifact",
        [smoke](UnitContext& ctx) {
          const SystemModel m =
              sens::make_model(sens::standard_sleep_states(), 0.01, 2);
          const AverageCostOptimizer avg(m);
          const auto constraints = [](const SystemModel& mm) {
            return std::vector<OptimizationConstraint>{
                {metrics::queue_length(mm), 0.5, "perf"},
                {metrics::request_loss(mm), 0.05, "loss"}};
          };
          const OptimizationResult a =
              avg.minimize(metrics::power(m), constraints(m));
          ctx.check(a.feasible, "average-cost LP infeasible (Fig. 14a)");
          if (!a.feasible) return;
          ctx.record("fig14a average-cost", a.lp_iterations,
                     a.objective_per_step);
          ctx.linef("  average-cost optimum %10.4f W (horizon-free)",
                    a.objective_per_step);
          const std::vector<double> horizons =
              smoke ? std::vector<double>{1e2, 1e5}
                    : std::vector<double>{1e2, 1e3, 1e4, 1e5};
          double longest = -1.0;
          for (const double h : horizons) {
            const PolicyOptimizer d(m, sens::make_config(m, h));
            const OptimizationResult r =
                d.minimize(metrics::power(m), constraints(m));
            ctx.linef("  discounted horizon %-8g %10.4f W", h,
                      r.feasible ? r.objective_per_step : -1.0);
            if (r.feasible) {
              // Free end-of-session shutdown: discounted optima sit at
              // or below the horizon-free optimum...
              ctx.check(r.objective_per_step <=
                            a.objective_per_step + 1e-6,
                        "a discounted optimum exceeded the average-cost "
                        "optimum at horizon " + std::to_string(h));
              longest = r.objective_per_step;
            }
          }
          // ...and converge to it from below as the horizon grows.
          ctx.check(longest > 0.0 &&
                        a.objective_per_step - longest <=
                            0.01 * a.objective_per_step,
                    "discounted optimum at horizon 1e5 failed to approach "
                    "the average-cost optimum");
        }});
    return units;
  };
  return sc;
}

}  // namespace

void register_extension_scenarios() { add(make_average_cost()); }

}  // namespace dpm::scenario
