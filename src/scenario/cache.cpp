#include "scenario/cache.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "robust/probe.h"
#include "scenario/json.h"
#include "sim/hash.h"

namespace dpm::scenario {

namespace {

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Parses a 16-digit hex key; returns false on malformed input.
bool parse_hex(const std::string& s, std::uint64_t& out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return false;
  }
  out = v;
  return true;
}

}  // namespace

std::string serialize_unit_output(const UnitOutput& out) {
  JsonValue payload = JsonValue::object();
  JsonValue records = JsonValue::array();
  for (const Record& r : out.records) {
    JsonValue rec = JsonValue::object();
    rec.set("name", JsonValue::string(r.name));
    rec.set("iterations",
            JsonValue::number(static_cast<double>(r.iterations)));
    rec.set("objective", JsonValue::number(r.objective));
    records.push_back(std::move(rec));
  }
  payload.set("records", std::move(records));
  JsonValue lines = JsonValue::array();
  for (const std::string& l : out.lines) {
    lines.push_back(JsonValue::string(l));
  }
  payload.set("lines", std::move(lines));
  JsonValue values = JsonValue::array();
  for (const auto& [k, v] : out.values) {
    JsonValue pair = JsonValue::array();
    pair.push_back(JsonValue::string(k));
    pair.push_back(JsonValue::number(v));
    values.push_back(std::move(pair));
  }
  payload.set("values", std::move(values));
  return payload.dump();
}

UnitOutput deserialize_unit_output(const std::string& payload) {
  const JsonValue v = JsonValue::parse(payload);
  UnitOutput out;
  const JsonValue* records = v.get("records");
  const JsonValue* lines = v.get("lines");
  const JsonValue* values = v.get("values");
  if (records == nullptr || !records->is_array() || lines == nullptr ||
      !lines->is_array() || values == nullptr || !values->is_array()) {
    throw JsonError("cache payload: missing records/lines/values");
  }
  for (const JsonValue& rec : records->items()) {
    Record r;
    r.name = rec.string_at("name");
    const double iters = rec.number_at("iterations");
    if (iters < 0.0 || iters != static_cast<double>(
                                    static_cast<std::size_t>(iters))) {
      throw JsonError("cache payload: non-integral iteration count");
    }
    r.iterations = static_cast<std::size_t>(iters);
    r.objective = rec.number_at("objective");
    r.wall_ms = 0.0;  // the determinism contract: cached == deterministic
    out.records.push_back(std::move(r));
  }
  for (const JsonValue& l : lines->items()) {
    out.lines.push_back(l.as_string());
  }
  for (const JsonValue& pair : values->items()) {
    if (!pair.is_array() || pair.items().size() != 2) {
      throw JsonError("cache payload: malformed value pair");
    }
    out.values.emplace_back(pair.items()[0].as_string(),
                            pair.items()[1].as_number());
  }
  return out;
}

ResultCache::ResultCache(std::string dir, std::size_t max_entries)
    : dir_(std::move(dir)),
      file_((std::filesystem::path(dir_) / "cache.jsonl").string()),
      max_entries_(max_entries == 0 ? 1 : max_entries) {}

void ResultCache::load() {
  std::ifstream in(file_);
  if (!in) return;  // no cache yet
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      const JsonValue v = JsonValue::parse(line);
      std::uint64_t key = 0;
      if (!parse_hex(v.string_at("key"), key)) {
        ++stats_.rejected;
        continue;
      }
      std::uint64_t sum = 0;
      if (!parse_hex(v.string_at("sum"), sum)) {
        ++stats_.rejected;
        continue;
      }
      const JsonValue* payload = v.get("payload");
      if (payload == nullptr || !payload->is_object()) {
        ++stats_.rejected;
        continue;
      }
      // Canonical re-serialization, then checksum: a poisoned number,
      // renamed field, or truncated entry fails here and the unit
      // recomputes instead of replaying garbage.
      const std::string serialized = payload->dump();
      if (sim::fnv1a(serialized) != sum) {
        ++stats_.rejected;
        continue;
      }
      deserialize_unit_output(serialized);  // structural validation
      Entry e;
      e.key = key;
      e.scenario = v.string_at("scenario");
      e.label = v.string_at("unit");
      e.payload = serialized;
      e.touch = ++clock_;
      const auto [it, inserted] = index_.emplace(key, entries_.size());
      if (inserted) {
        entries_.push_back(std::move(e));
      } else {
        entries_[it->second] = std::move(e);  // later line wins
      }
    } catch (const JsonError&) {
      ++stats_.rejected;
    }
  }
}

bool ResultCache::lookup(std::uint64_t key, UnitOutput& out) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  Entry& e = entries_[it->second];
  try {
    out = deserialize_unit_output(e.payload);
  } catch (const JsonError&) {
    // Cannot happen for entries validated at load/store time; treat a
    // surprise as a miss rather than aborting the run.
    ++stats_.misses;
    ++stats_.rejected;
    index_.erase(it);
    return false;
  }
  e.touch = ++clock_;
  ++stats_.hits;
  return true;
}

void ResultCache::store(std::uint64_t key, const std::string& scenario,
                        const std::string& label, const UnitOutput& out) {
  assert(out.failures.empty() && "failed units must not be cached");
  Entry e;
  e.key = key;
  e.scenario = scenario;
  e.label = label;
  e.payload = serialize_unit_output(out);
  e.touch = ++clock_;
  const auto [it, inserted] = index_.emplace(key, entries_.size());
  if (inserted) {
    entries_.push_back(std::move(e));
  } else {
    entries_[it->second] = std::move(e);
  }
}

bool ResultCache::flush() {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return false;

  // Oldest-touched first, so load order doubles as LRU order and the
  // trim below drops the least recently used entries.
  std::vector<const Entry*> order;
  order.reserve(entries_.size());
  for (const Entry& e : entries_) order.push_back(&e);
  std::sort(order.begin(), order.end(),
            [](const Entry* a, const Entry* b) { return a->touch < b->touch; });
  if (order.size() > max_entries_) {
    stats_.evicted += order.size() - max_entries_;
    order.erase(order.begin(),
                order.begin() + static_cast<std::ptrdiff_t>(order.size() -
                                                            max_entries_));
  }

  std::ostringstream body;
  for (const Entry* e : order) {
    body << "{\"key\":\"" << hex16(e->key) << "\",\"scenario\":\""
         << json_escape(e->scenario) << "\",\"unit\":\""
         << json_escape(e->label) << "\",\"sum\":\""
         << hex16(sim::fnv1a(e->payload)) << "\",\"payload\":" << e->payload
         << "}\n";
  }
  std::string text = body.str();

  // Fault injection: flip one byte mid-store, simulating a torn write
  // that survived the rename.  Whatever the flip lands on (checksum,
  // quote, even the newline between entries) the damaged line fails the
  // load-time parse or checksum and is dropped — corruption degrades to
  // a recompute, never a wrong replay.
  if (!text.empty() && robust::probe(robust::FaultSite::kCacheLine)) {
    text[text.size() / 2] ^= 0x20;
  }

  // Crash-safe compaction: write the whole store to a sibling temp file
  // and atomically rename it over cache.jsonl.  A crash (or kill) at
  // any point leaves either the previous cache or the new one — never a
  // truncated hybrid.
  const std::string tmp = file_ + ".tmp";
  {
    std::ofstream outf(tmp, std::ios::trunc);
    if (!outf) return false;
    outf << text;
    outf.flush();
    if (!outf) {
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::filesystem::rename(tmp, file_, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace dpm::scenario
