#include "scenario/scenario.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace dpm::scenario {

void UnitContext::linef(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out_.lines.emplace_back(buf);
}

std::vector<double> smoke_subset(const std::vector<double>& bounds,
                                 std::size_t k) {
  if (k == 0 || k >= bounds.size()) return bounds;
  std::vector<double> out;
  out.reserve(k);
  if (k == 1) {
    out.push_back(bounds.back());
    return out;
  }
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t idx = i * (bounds.size() - 1) / (k - 1);
    out.push_back(bounds[idx]);
  }
  return out;
}

std::vector<CurvePoint> collect_curve(ShapeChecker& c,
                                      const std::string& series) {
  std::vector<CurvePoint> curve;
  const std::size_t points = c.count(series + "/points");
  for (std::size_t i = 0; i < points; ++i) {
    const std::string k = series + "/" + std::to_string(i);
    if (c.get(k + "/feasible") == 1.0) {
      curve.push_back({c.get(k + "/bound"), c.get(k + "/objective")});
    }
  }
  c.check(!curve.empty(),
          "sweep series '" + series + "' has no feasible point");
  return curve;
}

void check_curve_dominates(ShapeChecker& c,
                           const std::vector<CurvePoint>& curve,
                           double point_metric, double point_objective,
                           double rel_slack, double abs_slack,
                           const std::string& what) {
  for (const CurvePoint& pt : curve) {
    if (pt.bound >= point_metric) {
      c.check(pt.objective <=
                  point_objective + rel_slack * point_objective + abs_slack,
              what + " (objective " + std::to_string(point_objective) +
                  ", metric " + std::to_string(point_metric) +
                  ") beat the optimal curve at bound<=" +
                  std::to_string(pt.bound));
      return;
    }
  }
}

namespace {

std::string default_bound_label(const std::string& swept_name, double bound) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s<=%g", swept_name.c_str(), bound);
  return buf;
}

}  // namespace

Unit sweep_unit(SweepSpec spec) {
  Unit unit;
  unit.label = spec.series;
  unit.run = [spec = std::move(spec)](UnitContext& ctx) {
    const SystemModel model = spec.model();
    const PolicyOptimizer opt(model, spec.config(model));
    const std::vector<OptimizationConstraint> fixed =
        spec.fixed ? spec.fixed(model) : std::vector<OptimizationConstraint>{};
    const std::vector<double> bounds =
        ctx.smoke() ? smoke_subset(spec.bounds, spec.smoke_points)
                    : spec.bounds;

    const auto curve = opt.sweep(spec.objective(model), spec.swept(model),
                                 spec.swept_name, bounds, fixed);

    const auto label = [&](double b) {
      return spec.bound_label ? spec.bound_label(b)
                              : default_bound_label(spec.swept_name, b);
    };

    std::size_t feasible_points = 0;
    std::size_t total_pivots = 0;
    double prev = std::numeric_limits<double>::quiet_NaN();
    for (std::size_t i = 0; i < curve.size(); ++i) {
      const auto& pt = curve[i];
      total_pivots += pt.lp_iterations;
      const std::string pt_name = spec.series + " " + label(pt.bound);
      ctx.record(pt_name, pt.lp_iterations,
                 pt.feasible ? pt.objective : -1.0);
      if (pt.feasible) {
        ctx.linef("  %-44s %12.4f  pivots %4zu", pt_name.c_str(),
                  pt.objective, pt.lp_iterations);
      } else {
        ctx.linef("  %-44s %12s  pivots %4zu", pt_name.c_str(), "infeasible",
                  pt.lp_iterations);
      }
      const std::string vk = spec.series + "/" + std::to_string(i);
      ctx.value(vk + "/bound", pt.bound);
      ctx.value(vk + "/feasible", pt.feasible ? 1.0 : 0.0);
      if (pt.feasible) {
        ++feasible_points;
        ctx.value(vk + "/objective", pt.objective);
        if (!pt.constraint_per_step.empty()) {
          ctx.value(vk + "/achieved", pt.constraint_per_step.back());
        }
        // Expected curve shape along the sweep order.
        if (!std::isnan(prev)) {
          constexpr double kTol = 1e-6;
          if (spec.monotone == Monotone::kNonincreasing) {
            ctx.check(pt.objective <= prev + kTol,
                      spec.series + ": objective rose from " +
                          std::to_string(prev) + " to " +
                          std::to_string(pt.objective) + " at " +
                          label(pt.bound) +
                          " although the constraint was relaxed");
          } else if (spec.monotone == Monotone::kNondecreasing) {
            ctx.check(pt.objective >= prev - kTol,
                      spec.series + ": objective fell from " +
                          std::to_string(prev) + " to " +
                          std::to_string(pt.objective) + " at " +
                          label(pt.bound) +
                          " although the constraint was tightened");
          }
        }
        prev = pt.objective;
      }
    }
    ctx.value(spec.series + "/points", static_cast<double>(curve.size()));
    ctx.value(spec.series + "/feasible_points",
              static_cast<double>(feasible_points));
    if (spec.expect_some_feasible) {
      ctx.check(feasible_points > 0,
                spec.series + ": every sweep point came back infeasible");
    }

    // Warm-start effectiveness (before/after): the first point is a cold
    // solve, every later one restarts from the previous optimal basis.
    if (curve.size() > 1) {
      const std::size_t cold = curve.front().lp_iterations;
      const std::size_t warm = total_pivots - cold;
      const double warm_avg =
          static_cast<double>(warm) / static_cast<double>(curve.size() - 1);
      ctx.record(spec.series + " pivots: cold first point", cold,
                 static_cast<double>(cold));
      ctx.record(spec.series + " pivots: warm rest", warm, warm_avg);
      ctx.linef("  %-44s cold %4zu, warm avg %.1f/point", "warm-start pivots",
                cold, warm_avg);
      ctx.value(spec.series + "/pivots_cold", static_cast<double>(cold));
      ctx.value(spec.series + "/pivots_warm_avg", warm_avg);
    }

    if (spec.inspect) spec.inspect(model, opt, curve, ctx);
  };
  return unit;
}

Unit point_unit(PointSpec spec) {
  Unit unit;
  unit.label = spec.name;
  unit.run = [spec = std::move(spec)](UnitContext& ctx) {
    const SystemModel model = spec.model();
    const PolicyOptimizer opt(model, spec.config(model));
    const std::vector<OptimizationConstraint> constraints =
        spec.constraints ? spec.constraints(model)
                         : std::vector<OptimizationConstraint>{};
    const OptimizationResult r =
        opt.minimize(spec.objective(model), constraints);
    ctx.record(spec.name, r.lp_iterations,
               r.feasible ? r.objective_per_step : -1.0);
    if (r.feasible) {
      ctx.linef("  %-44s %12.4f  pivots %4zu", spec.name.c_str(),
                r.objective_per_step, r.lp_iterations);
    } else {
      ctx.linef("  %-44s %12s  pivots %4zu", spec.name.c_str(), "infeasible",
                r.lp_iterations);
    }
    ctx.value(spec.name + "/feasible", r.feasible ? 1.0 : 0.0);
    if (r.feasible) ctx.value(spec.name + "/objective", r.objective_per_step);
    if (spec.expect_feasible) {
      ctx.check(r.feasible, spec.name + ": expected a feasible optimum");
    }
  };
  return unit;
}

}  // namespace dpm::scenario
