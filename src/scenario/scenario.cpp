#include "scenario/scenario.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <stdexcept>

namespace dpm::scenario {

namespace {

/// Canonical hash of an optimizer configuration: everything that
/// changes the LP or the policy extraction.
void hash_config(sim::Fnv1a& h, const OptimizerConfig& cfg) {
  h.add_string("OptimizerConfig");
  h.add_double(cfg.discount);
  h.add_size(cfg.initial_distribution.size());
  for (const double p : cfg.initial_distribution) h.add_double(p);
  h.add_byte(static_cast<unsigned char>(cfg.backend));
}

}  // namespace

std::uint64_t unit_key(const Scenario& sc, const Unit& unit,
                       std::size_t index, bool smoke,
                       std::uint64_t schema_version) {
  sim::Fnv1a h;
  h.add_string("dpmopt-unit-key");
  h.add_u64(schema_version);
  h.add_string(sc.name);
  h.add_size(index);
  h.add_string(unit.label);
  h.add_byte(smoke ? 1 : 0);
  if (unit.fingerprint) {
    h.add_byte(1);
    unit.fingerprint(h, smoke);
  } else {
    h.add_byte(0);
  }
  return h.digest();
}

std::uint64_t Scenario::unit_key(std::size_t index, bool smoke,
                                 std::uint64_t schema_version) const {
  const std::vector<Unit> expanded = units(smoke);
  if (index >= expanded.size()) {
    throw std::out_of_range("Scenario::unit_key: unit index " +
                            std::to_string(index) + " out of range for '" +
                            name + "'");
  }
  return scenario::unit_key(*this, expanded[index], index, smoke,
                            schema_version);
}

void UnitContext::linef(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out_.lines.emplace_back(buf);
}

std::vector<double> smoke_subset(const std::vector<double>& bounds,
                                 std::size_t k) {
  if (k == 0 || k >= bounds.size()) return bounds;
  std::vector<double> out;
  out.reserve(k);
  if (k == 1) {
    out.push_back(bounds.back());
    return out;
  }
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t idx = i * (bounds.size() - 1) / (k - 1);
    out.push_back(bounds[idx]);
  }
  return out;
}

std::vector<CurvePoint> collect_curve(ShapeChecker& c,
                                      const std::string& series) {
  std::vector<CurvePoint> curve;
  const std::size_t points = c.count(series + "/points");
  for (std::size_t i = 0; i < points; ++i) {
    const std::string k = series + "/" + std::to_string(i);
    if (c.get(k + "/feasible") == 1.0) {
      curve.push_back({c.get(k + "/bound"), c.get(k + "/objective")});
    }
  }
  c.check(!curve.empty(),
          "sweep series '" + series + "' has no feasible point");
  return curve;
}

void check_curve_dominates(ShapeChecker& c,
                           const std::vector<CurvePoint>& curve,
                           double point_metric, double point_objective,
                           double rel_slack, double abs_slack,
                           const std::string& what) {
  for (const CurvePoint& pt : curve) {
    if (pt.bound >= point_metric) {
      c.check(pt.objective <=
                  point_objective + rel_slack * point_objective + abs_slack,
              what + " (objective " + std::to_string(point_objective) +
                  ", metric " + std::to_string(point_metric) +
                  ") beat the optimal curve at bound<=" +
                  std::to_string(pt.bound));
      return;
    }
  }
}

namespace {

std::string default_bound_label(const std::string& swept_name, double bound) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s<=%g", swept_name.c_str(), bound);
  return buf;
}

}  // namespace

Unit sweep_unit(SweepSpec sweep_spec) {
  // The run body and the cache fingerprint share one immutable spec.
  const auto sp = std::make_shared<const SweepSpec>(std::move(sweep_spec));
  Unit unit;
  unit.label = sp->series;
  // Content address of the series: the composed model, the optimizer
  // config, the LP the first grid point assembles (which canonically
  // covers objective, fixed constraints, and the swept metric via their
  // coefficients), and the grid itself.  One series is one unit, so a
  // warm-started sweep caches and replays as a whole — a replayed run
  // stays byte-identical to a cold one.
  unit.fingerprint = [sp](sim::Fnv1a& h, bool smoke) {
    const SystemModel model = sp->model();
    model.hash_into(h);
    const OptimizerConfig cfg = sp->config(model);
    hash_config(h, cfg);
    const std::vector<double> bounds =
        smoke ? smoke_subset(sp->bounds, sp->smoke_points) : sp->bounds;
    std::vector<OptimizationConstraint> constraints =
        sp->fixed ? sp->fixed(model) : std::vector<OptimizationConstraint>{};
    constraints.push_back({sp->swept(model),
                           bounds.empty() ? 0.0 : bounds.front(),
                           sp->swept_name});
    const PolicyOptimizer opt(model, cfg);
    opt.build_lp(sp->objective(model), constraints).hash_into(h);
    h.add_string(sp->swept_name);
    h.add_size(bounds.size());
    for (const double b : bounds) h.add_double(b);  // the grid points
  };
  unit.run = [sp](UnitContext& ctx) {
    const SweepSpec& spec = *sp;
    const SystemModel model = spec.model();
    const PolicyOptimizer opt(model, spec.config(model));
    const std::vector<OptimizationConstraint> fixed =
        spec.fixed ? spec.fixed(model) : std::vector<OptimizationConstraint>{};
    const std::vector<double> bounds =
        ctx.smoke() ? smoke_subset(spec.bounds, spec.smoke_points)
                    : spec.bounds;

    const auto curve = opt.sweep(spec.objective(model), spec.swept(model),
                                 spec.swept_name, bounds, fixed);

    const auto label = [&](double b) {
      return spec.bound_label ? spec.bound_label(b)
                              : default_bound_label(spec.swept_name, b);
    };

    std::size_t feasible_points = 0;
    std::size_t total_pivots = 0;
    double prev = std::numeric_limits<double>::quiet_NaN();
    for (std::size_t i = 0; i < curve.size(); ++i) {
      const auto& pt = curve[i];
      total_pivots += pt.lp_iterations;
      const std::string pt_name = spec.series + " " + label(pt.bound);
      ctx.record(pt_name, pt.lp_iterations,
                 pt.feasible ? pt.objective : -1.0);
      if (pt.feasible) {
        ctx.linef("  %-44s %12.4f  pivots %4zu", pt_name.c_str(),
                  pt.objective, pt.lp_iterations);
      } else {
        ctx.linef("  %-44s %12s  pivots %4zu", pt_name.c_str(), "infeasible",
                  pt.lp_iterations);
      }
      const std::string vk = spec.series + "/" + std::to_string(i);
      ctx.value(vk + "/bound", pt.bound);
      ctx.value(vk + "/feasible", pt.feasible ? 1.0 : 0.0);
      if (pt.feasible) {
        ++feasible_points;
        ctx.value(vk + "/objective", pt.objective);
        if (!pt.constraint_per_step.empty()) {
          ctx.value(vk + "/achieved", pt.constraint_per_step.back());
        }
        // Expected curve shape along the sweep order.
        if (!std::isnan(prev)) {
          constexpr double kTol = 1e-6;
          if (spec.monotone == Monotone::kNonincreasing) {
            ctx.check(pt.objective <= prev + kTol,
                      spec.series + ": objective rose from " +
                          std::to_string(prev) + " to " +
                          std::to_string(pt.objective) + " at " +
                          label(pt.bound) +
                          " although the constraint was relaxed");
          } else if (spec.monotone == Monotone::kNondecreasing) {
            ctx.check(pt.objective >= prev - kTol,
                      spec.series + ": objective fell from " +
                          std::to_string(prev) + " to " +
                          std::to_string(pt.objective) + " at " +
                          label(pt.bound) +
                          " although the constraint was tightened");
          }
        }
        prev = pt.objective;
      }
    }
    ctx.value(spec.series + "/points", static_cast<double>(curve.size()));
    ctx.value(spec.series + "/feasible_points",
              static_cast<double>(feasible_points));
    if (spec.expect_some_feasible) {
      ctx.check(feasible_points > 0,
                spec.series + ": every sweep point came back infeasible");
    }

    // Warm-start effectiveness (before/after): the first point is a cold
    // solve, every later one restarts from the previous optimal basis.
    if (curve.size() > 1) {
      const std::size_t cold = curve.front().lp_iterations;
      const std::size_t warm = total_pivots - cold;
      const double warm_avg =
          static_cast<double>(warm) / static_cast<double>(curve.size() - 1);
      ctx.record(spec.series + " pivots: cold first point", cold,
                 static_cast<double>(cold));
      ctx.record(spec.series + " pivots: warm rest", warm, warm_avg);
      ctx.linef("  %-44s cold %4zu, warm avg %.1f/point", "warm-start pivots",
                cold, warm_avg);
      ctx.value(spec.series + "/pivots_cold", static_cast<double>(cold));
      ctx.value(spec.series + "/pivots_warm_avg", warm_avg);
    }

    if (spec.inspect) spec.inspect(model, opt, curve, ctx);
  };
  return unit;
}

Unit point_unit(PointSpec point_spec) {
  const auto sp = std::make_shared<const PointSpec>(std::move(point_spec));
  Unit unit;
  unit.label = sp->name;
  // Content address of the cell: its own model, config, and the exact
  // LP it solves (objective + constraint coefficients + scaled rhs).
  unit.fingerprint = [sp](sim::Fnv1a& h, bool /*smoke*/) {
    const SystemModel model = sp->model();
    model.hash_into(h);
    const OptimizerConfig cfg = sp->config(model);
    hash_config(h, cfg);
    const PolicyOptimizer opt(model, cfg);
    opt.build_lp(sp->objective(model),
                 sp->constraints ? sp->constraints(model)
                                 : std::vector<OptimizationConstraint>{})
        .hash_into(h);
  };
  unit.run = [sp](UnitContext& ctx) {
    const PointSpec& spec = *sp;
    const SystemModel model = spec.model();
    const PolicyOptimizer opt(model, spec.config(model));
    const std::vector<OptimizationConstraint> constraints =
        spec.constraints ? spec.constraints(model)
                         : std::vector<OptimizationConstraint>{};
    const OptimizationResult r =
        opt.minimize(spec.objective(model), constraints);
    ctx.record(spec.name, r.lp_iterations,
               r.feasible ? r.objective_per_step : -1.0);
    if (r.feasible) {
      ctx.linef("  %-44s %12.4f  pivots %4zu", spec.name.c_str(),
                r.objective_per_step, r.lp_iterations);
    } else {
      ctx.linef("  %-44s %12s  pivots %4zu", spec.name.c_str(), "infeasible",
                r.lp_iterations);
    }
    ctx.value(spec.name + "/feasible", r.feasible ? 1.0 : 0.0);
    if (r.feasible) ctx.value(spec.name + "/objective", r.objective_per_step);
    if (spec.expect_feasible) {
      ctx.check(r.feasible, spec.name + ": expected a feasible optimum");
    }
  };
  return unit;
}

}  // namespace dpm::scenario
