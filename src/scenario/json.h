// Minimal JSON value / parser / writer for the scenario toolchain.
//
// Two consumers, both introduced with the result cache PR:
//  * scenario/cache — serializes cached unit results as JSONL lines and
//    must re-read them *bit-exactly* (a replayed run's BENCH JSON has to
//    be byte-identical to the cold run's);
//  * scenario/compare — parses baseline BENCH_<scenario>.json files for
//    the --compare regression mode and the golden test tier.
//
// Scope is deliberately the JSON subset those producers emit: objects,
// arrays, strings (with \uXXXX escapes accepted, BMP only), finite
// numbers, booleans, null.  Numbers are written with %.17g, which
// round-trips every finite IEEE-754 double through strtod, so
// serialize → parse → serialize is the identity on cached payloads.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dpm::scenario {

class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

/// One parsed JSON value.  Objects keep insertion order (lookup is
/// linear — scenario payloads are small and order stability matters for
/// byte-identical re-serialization).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool b);
  static JsonValue number(double v);
  static JsonValue string(std::string s);
  static JsonValue array();
  static JsonValue object();

  Kind kind() const noexcept { return kind_; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }

  /// Typed accessors; throw JsonError on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;              // array
  const std::vector<std::pair<std::string, JsonValue>>& members()
      const;                                                // object

  /// Object field lookup; nullptr when absent (or not an object).
  const JsonValue* get(std::string_view key) const;
  /// Typed field conveniences that throw JsonError with the field name
  /// when the member is missing or mistyped.
  double number_at(std::string_view key) const;
  const std::string& string_at(std::string_view key) const;

  /// Mutators (building payloads).
  void push_back(JsonValue v);                          // array
  void set(std::string key, JsonValue v);               // object (append)

  /// Parses one JSON document; trailing non-space input is an error.
  static JsonValue parse(std::string_view text);

  /// Compact serialization (no whitespace); numbers use %.17g so every
  /// finite double round-trips exactly.
  std::string dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  void dump_to(std::string& out) const;
};

/// JSON string escaping for ", \, and control characters.
std::string json_escape(std::string_view s);

/// Canonical %.17g rendering of a finite double (round-trips exactly).
std::string json_number(double v);

}  // namespace dpm::scenario
