// The shared cross-bench measurement schema.
//
// Every experiment harness in the repository — the scenario runner and
// the solver-scaling benches alike — drops a `BENCH_<name>.json` file
// with one record schema, {"name", "wall_ms", "iterations",
// "objective"}, so per-PR trajectories stay machine-comparable with a
// single jq expression.
//
// Scenario runs write `wall_ms = 0` for every record: their JSON is
// deterministic by construction (identical for `--jobs 1` and
// `--jobs N`), and pivot counts (`iterations`) are the performance
// trajectory for LP work.  The solver-scaling benches keep real wall
// times.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace dpm::scenario {

/// One measurement in the shared cross-bench schema.
struct JsonRecord {
  std::string name;        // what was measured ("revised n=2000", ...)
  double wall_ms = 0.0;    // wall time spent (0 in deterministic runs)
  std::size_t iterations = 0;  // algorithm iterations (0 when n/a)
  double objective = 0.0;  // headline numeric result (0 when n/a)
};

/// Renders the shared BENCH schema to a string — the exact bytes
/// `write_json_report` puts on disk.  Exposed so tests can assert
/// byte-identity (cache replays, --jobs invariance) without touching
/// the filesystem, and so --baseline-out can write to arbitrary paths.
inline std::string json_report_string(const std::string& name,
                                      const std::vector<JsonRecord>& records) {
  std::string out = "{\n  \"bench\": \"" + name + "\",\n  \"results\": [";
  char buf[160];
  for (std::size_t i = 0; i < records.size(); ++i) {
    const JsonRecord& r = records[i];
    out += i == 0 ? "\n    " : ",\n    ";
    out += "{\"name\": \"" + r.name + "\", ";
    std::snprintf(buf, sizeof buf,
                  "\"wall_ms\": %.6f, \"iterations\": %zu, "
                  "\"objective\": %.12g}",
                  r.wall_ms, r.iterations, r.objective);
    out += buf;
  }
  out += "\n  ]\n}\n";
  return out;
}

/// Writes the shared schema to an explicit path (baseline files).
/// Returns false when the file cannot be opened or written.
inline bool write_json_report_to(const std::string& path,
                                 const std::string& name,
                                 const std::vector<JsonRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = json_report_string(name, records);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

/// Writes `BENCH_<name>.json` in the shared schema.  Returns false when
/// the file cannot be opened.
inline bool write_json_report(const std::string& name,
                              const std::vector<JsonRecord>& records) {
  return write_json_report_to("BENCH_" + name + ".json", name, records);
}

/// Collects records and writes `BENCH_<name>.json` on destruction.
/// Pass `enabled = false` (smoke runs) to skip the write: a smoke run
/// must not overwrite benchmark-grade trajectory records with tiny-size
/// numbers.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name, bool enabled = true)
      : bench_name_(std::move(bench_name)), enabled_(enabled) {}
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  void add(std::string name, double wall_ms, std::size_t iterations,
           double objective) {
    records_.push_back({std::move(name), wall_ms, iterations, objective});
  }

  ~JsonReport() {
    if (!enabled_) return;
    write_json_report(bench_name_, records_);
  }

 private:
  std::string bench_name_;
  bool enabled_;
  std::vector<JsonRecord> records_;
};

}  // namespace dpm::scenario
