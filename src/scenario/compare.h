// Record-aware regression comparator: the machinery behind
// `bench_scenarios --compare` and the golden-baseline test tier
// (tests/test_golden.cpp).
//
// A comparison takes a *baseline* record list (a checked-in golden file
// or a previous run's BENCH_<scenario>.json) and a *fresh* record list
// (the scenario just executed) and diffs them structurally:
//
//  * records are keyed by (name, occurrence index) — a missing or extra
//    record is a hard failure, never skipped silently;
//  * matched records compare per field under the scenario's declared
//    ToleranceRule set (scenario/scenario.h): |fresh - base| <=
//    abs + rel * |base|, independently for `objective` and
//    `iterations`; `wall_ms` is ignored (scenario records carry 0 by
//    the determinism contract);
//  * the report is human-readable and machine-decidable: ok() gates a
//    nonzero CLI exit for CI.
#pragma once

#include <string>
#include <vector>

#include "scenario/scenario.h"

namespace dpm::scenario {

struct CompareIssue {
  std::string record;  // record name ("" for file-level problems)
  std::string what;    // human-readable description
};

struct CompareReport {
  std::string scenario;
  std::size_t compared = 0;  // records matched and checked
  std::vector<CompareIssue> issues;
  bool ok() const noexcept { return issues.empty(); }
};

/// Parses a baseline file in the BENCH schema ({"bench": ..,
/// "results": [..]}).  Throws JsonError on malformed input; the bench
/// name is returned through `bench_name_out` when non-null.
std::vector<Record> parse_baseline(const std::string& json_text,
                                   std::string* bench_name_out = nullptr);

/// The first rule in `sc.tolerances` whose `name_contains` is a
/// substring of `record_name`; defaults when none matches.
ToleranceRule tolerance_for(const Scenario& sc,
                            const std::string& record_name);

/// Diffs `fresh` against `baseline` under the scenario's tolerances.
CompareReport compare_records(const Scenario& sc,
                              const std::vector<Record>& baseline,
                              const std::vector<Record>& fresh);

/// Multi-line human-readable rendering (one line when ok).
std::string format_report(const CompareReport& report);

}  // namespace dpm::scenario
