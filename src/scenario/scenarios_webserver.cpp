// Scenario registration for the two-processor web server, Fig. 9(a)
// (Sec. VI-B).  Replaces bench_fig09a_webserver.
#include <cmath>
#include <cstdio>
#include <string>

#include "cases/web_server.h"
#include "scenario/registry.h"
#include "sim/simulator.h"

namespace dpm::scenario {

namespace {

using cases::WebServer;

Scenario make_fig09a() {
  Scenario sc;
  sc.name = "fig09a_webserver";
  sc.title = "Figure 9(a) (Sec. VI-B)";
  sc.what =
      "two-processor web server, tau = 10 s, one-day horizon: minimum "
      "power vs required throughput, trace-driven circles, and the "
      "paper's observation that CPU2 never runs alone";

  sc.units = [](bool /*smoke*/) {
    const std::vector<double> targets{0.05, 0.1, 0.2, 0.3, 0.4, 0.5,
                                      0.6,  0.7, 0.8, 0.9, 0.95};
    SweepSpec spec;
    spec.series = "power-vs-throughput";
    spec.model = [] { return WebServer::make_model(/*seed=*/7); };
    spec.config = [](const SystemModel& m) {
      return WebServer::make_config(m);
    };
    spec.objective = [](const SystemModel& m) { return metrics::power(m); };
    // E[throughput] >= T  <=>  E[-throughput] <= -T: sweep the <=-form
    // metric with bounds -T, tightening as T grows.
    spec.swept = [](const SystemModel& m) {
      return WebServer::min_throughput_constraint(m, 0.0).metric;
    };
    spec.swept_name = "throughput";
    spec.bounds.reserve(targets.size());
    for (const double t : targets) spec.bounds.push_back(-t);
    spec.bound_label = [](double b) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "thpt>=%g", -b);
      return std::string(buf);
    };
    spec.monotone = Monotone::kNondecreasing;  // tightening sweep
    spec.smoke_points = 3;
    spec.inspect = [](const SystemModel& m, const PolicyOptimizer& opt,
                      const std::vector<PolicyOptimizer::ParetoPoint>& curve,
                      UnitContext& ctx) {
      const double gamma = opt.config().discount;
      sim::Simulator simulator(m);
      const std::vector<unsigned> stream =
          WebServer::make_trace(ctx.slices(400000), /*seed=*/7);
      const std::size_t na = m.num_commands();
      const double tol = ctx.smoke() ? 0.35 : 0.15;
      for (std::size_t i = 0; i < curve.size(); ++i) {
        const auto& pt = curve[i];
        if (!pt.feasible) continue;
        // How often does the optimum run the fast CPU alone?  (Never:
        // 2x power for 1.5x performance does not pay off alone.)
        double cpu2_alone = 0.0;
        for (std::size_t s = 0; s < m.num_states(); ++s) {
          if (m.decompose(s).sp != WebServer::kCpu2Only) continue;
          for (std::size_t a = 0; a < na; ++a) {
            cpu2_alone += pt.frequencies[s * na + a];
          }
        }
        cpu2_alone *= 1.0 - gamma;
        ctx.check(cpu2_alone < 1e-3,
                  "the optimum ran CPU2 alone with frequency " +
                      std::to_string(cpu2_alone) + " at thpt>=" +
                      std::to_string(-pt.bound) +
                      " (paper: never pays off)");

        // Trace-driven session simulation (the circles).
        sim::PolicyController ctl(m, *pt.policy);
        sim::SimulationConfig cfg;
        cfg.slices = stream.size();
        cfg.initial_state = {WebServer::kBothOn, 0, 0};
        cfg.session_restart_prob = 1.0 - gamma;
        cfg.seed = ctx.seed(10 + i);
        const sim::SimulationResult s = simulator.run_trace(ctl, stream, cfg);
        ctx.linef("  thpt>=%-6.2f LP %8.4f W (E[thpt] %6.4f)  sim %8.4f W  "
                  "cpu2-alone %.5f",
                  -pt.bound, pt.objective, -pt.constraint_per_step.back(),
                  s.avg_power, cpu2_alone);
        ctx.record("circle thpt>=" + std::to_string(-pt.bound), cfg.slices,
                   s.avg_power);
        // Short smoke runs leave real trace-vs-model drift at the small
        // targets (the paper's circles are near, not on, the curve):
        // allow more absolute slack there.  The loose-target LPs are
        // degenerate — several optimal vertices exist, and which one
        // the simplex lands on is tie-break luck — and some optimal
        // policies mix slowly, so a truncated smoke trace can sit a
        // couple of tenths of a Watt off a prediction the full-length
        // trace (and the exact closed-loop evaluation) confirms.
        ctx.check(std::abs(s.avg_power - pt.objective) <=
                      tol * pt.objective + (ctx.smoke() ? 0.3 : 0.05),
                  "trace-driven power drifted off the LP prediction at "
                  "thpt>=" + std::to_string(-pt.bound));
      }
    };
    std::vector<Unit> units;
    units.push_back(sweep_unit(std::move(spec)));
    return units;
  };
  // --compare tolerances: the simulated circles ride on degenerate-LP
  // vertex tie-breaks (see the check above — this is the PR 4 fig09a
  // drift), so they get the widest band; pivot summaries track solver
  // tuning; the LP curve itself is near-exact.
  sc.tolerances = {
      {.name_contains = "circle", .objective_abs = 0.3,
       .objective_rel = 0.05},
      {.name_contains = "pivots", .objective_abs = 50.0,
       .objective_rel = 1.0},
      {.name_contains = "", .objective_abs = 1e-6, .objective_rel = 1e-5},
  };
  return sc;
}

}  // namespace

void register_webserver_scenarios() { add(make_fig09a()); }

}  // namespace dpm::scenario
