// Content-addressed scenario result cache.
//
// The scenario engine's determinism contract (all randomness a pure
// function of (scenario name, unit index); results independent of
// --jobs) makes unit results *pure functions of their inputs* — so a
// second run of an unchanged scenario can skip every LP solve and
// simulation and replay the recorded results bit-identically.  This
// module is that cache:
//
//  * key — `scenario::unit_key()`: an FNV-1a content address over the
//    result schema version, scenario name, unit index/label, smoke
//    flag, and the unit's input fingerprint (composed CSR model, LP
//    content, grid points — see Unit::fingerprint);
//  * value — the unit's full buffered output (records, stdout lines,
//    cross-unit values), excluding wall time and excluding failed
//    units (failures are never cached);
//  * store — one JSONL file `<dir>/cache.jsonl`, one self-checksummed
//    entry per line, LRU-bounded: the file is rewritten least-recently-
//    used-first on flush and trimmed to `max_entries`, so the cache
//    cannot grow without bound; the rewrite goes to a sibling temp file
//    first and is atomically renamed into place, so a crash mid-flush
//    leaves the previous store intact instead of a truncated file;
//  * integrity — every line carries an FNV-1a checksum of its payload;
//    a poisoned or truncated line fails the checksum (or the parse) and
//    is dropped, turning corruption into a recompute instead of a wrong
//    replay.
//
// Threading: the ExperimentRunner performs lookups before the worker
// pool starts and stores after it joins, so the cache itself is
// single-threaded by construction.  Concurrent *processes* sharing one
// cache dir follow last-writer-wins on flush — acceptable for a local
// accelerator whose worst case is a recompute.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "scenario/scenario.h"

namespace dpm::scenario {

struct CacheStats {
  std::size_t hits = 0;      // lookups replayed from the store
  std::size_t misses = 0;    // lookups that fell through to execution
  std::size_t rejected = 0;  // lines dropped: bad parse/checksum/schema
  std::size_t evicted = 0;   // entries trimmed by the LRU bound
};

class ResultCache {
 public:
  static constexpr std::size_t kDefaultMaxEntries = 4096;

  explicit ResultCache(std::string dir,
                       std::size_t max_entries = kDefaultMaxEntries);

  /// Reads `<dir>/cache.jsonl` if present.  Unreadable lines are
  /// counted in stats().rejected and dropped; a missing file is an
  /// empty cache, not an error.
  void load();

  /// On hit, fills `out` with the recorded records/lines/values
  /// (wall_ms = 0) and marks the entry most-recently-used.
  bool lookup(std::uint64_t key, UnitOutput& out);

  /// Records a freshly computed unit result.  Callers must not store
  /// failed units (asserted): a failure must recompute every run until
  /// fixed.  Storing an existing key overwrites it.
  void store(std::uint64_t key, const std::string& scenario,
             const std::string& label, const UnitOutput& out);

  /// Writes the store back as JSONL, oldest-touched first, trimmed to
  /// `max_entries` (evictions counted).  Creates the directory if
  /// needed.  The write goes to `<file>.tmp` and is atomically renamed
  /// over the store (crash-safe).  Returns false when the file cannot
  /// be written.
  bool flush();

  const CacheStats& stats() const noexcept { return stats_; }
  const std::string& path() const noexcept { return file_; }

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::string scenario;
    std::string label;
    std::string payload;     // serialized UnitOutput (JSON object)
    std::uint64_t touch = 0; // LRU clock
  };

  std::string dir_;
  std::string file_;
  std::size_t max_entries_;
  std::uint64_t clock_ = 0;
  std::vector<Entry> entries_;
  std::unordered_map<std::uint64_t, std::size_t> index_;  // key -> slot
  CacheStats stats_;
};

/// Payload (de)serialization, exposed for the poisoning tests:
/// records/lines/values of a unit's output as a compact JSON object.
std::string serialize_unit_output(const UnitOutput& out);
/// Throws JsonError on malformed payloads.
UnitOutput deserialize_unit_output(const std::string& payload);

}  // namespace dpm::scenario
