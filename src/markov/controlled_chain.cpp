#include "markov/controlled_chain.h"

#include <utility>

namespace dpm::markov {

ControlledMarkovChain::ControlledMarkovChain(
    std::vector<linalg::Matrix> per_command, double tol)
    : sparse_(SparseControlledChain::from_dense(per_command, tol)) {
  // The caller already paid for the dense matrices: keep them as the
  // dense cache instead of re-densifying on the first matrix() call.
  dense_cache_.reserve(per_command.size());
  for (linalg::Matrix& m : per_command) {
    dense_cache_.push_back(std::make_unique<linalg::Matrix>(std::move(m)));
  }
}

ControlledMarkovChain::ControlledMarkovChain(SparseControlledChain chain)
    : sparse_(std::move(chain)) {}

const linalg::Matrix& ControlledMarkovChain::matrix(
    std::size_t command) const {
  if (command >= num_commands()) {
    throw MarkovError("ControlledMarkovChain: command index out of range");
  }
  if (dense_cache_.empty()) dense_cache_.resize(num_commands());
  std::unique_ptr<linalg::Matrix>& slot = dense_cache_[command];
  if (slot == nullptr) {
    slot = std::make_unique<linalg::Matrix>(sparse_.to_dense(command));
  }
  return *slot;
}

MarkovChain ControlledMarkovChain::under_policy(
    const linalg::Matrix& policy) const {
  return sparse_.under_policy(policy);
}

}  // namespace dpm::markov
