#include "markov/controlled_chain.h"

#include <cmath>

namespace dpm::markov {

ControlledMarkovChain::ControlledMarkovChain(
    std::vector<linalg::Matrix> per_command, double tol)
    : matrices_(std::move(per_command)) {
  if (matrices_.empty()) {
    throw MarkovError("ControlledMarkovChain: needs at least one command");
  }
  const std::size_t n = matrices_.front().rows();
  for (std::size_t a = 0; a < matrices_.size(); ++a) {
    if (matrices_[a].rows() != n || matrices_[a].cols() != n) {
      throw MarkovError(
          "ControlledMarkovChain: command matrices must share one order");
    }
    validate_stochastic(matrices_[a],
                        "ControlledMarkovChain[command " + std::to_string(a) +
                            "]",
                        tol);
  }
}

MarkovChain ControlledMarkovChain::under_policy(
    const linalg::Matrix& policy) const {
  const std::size_t n = num_states();
  const std::size_t na = num_commands();
  if (policy.rows() != n || policy.cols() != na) {
    throw MarkovError("under_policy: policy matrix shape mismatch");
  }
  linalg::Matrix mixed(n, n);
  for (std::size_t s = 0; s < n; ++s) {
    double row_sum = 0.0;
    for (std::size_t a = 0; a < na; ++a) {
      const double w = policy(s, a);
      if (w < -1e-9) {
        throw MarkovError("under_policy: negative decision probability");
      }
      row_sum += w;
      if (w == 0.0) continue;
      const linalg::Matrix& pa = matrices_[a];
      for (std::size_t t = 0; t < n; ++t) mixed(s, t) += w * pa(s, t);
    }
    if (std::abs(row_sum - 1.0) > 1e-7) {
      throw MarkovError("under_policy: decision row " + std::to_string(s) +
                        " does not sum to 1");
    }
  }
  return MarkovChain(std::move(mixed), 1e-6);
}

}  // namespace dpm::markov
