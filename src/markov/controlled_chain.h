// Controlled (command-dependent) Markov chains, paper Section III-A.
#pragma once

#include <vector>

#include "markov/markov_chain.h"

namespace dpm::markov {

/// A stationary controllable Markov chain: one row-stochastic matrix per
/// command (the representation the paper adopts for the SP and for the
/// composed system).
///
/// Invariant: all matrices are square, same order, row-stochastic.
class ControlledMarkovChain {
 public:
  explicit ControlledMarkovChain(std::vector<linalg::Matrix> per_command,
                                 double tol = 1e-9);

  std::size_t num_states() const noexcept { return matrices_.front().rows(); }
  std::size_t num_commands() const noexcept { return matrices_.size(); }

  const linalg::Matrix& matrix(std::size_t command) const {
    return matrices_.at(command);
  }
  double transition(std::size_t from, std::size_t to,
                    std::size_t command) const {
    return matrices_.at(command)(from, to);
  }

  /// Mixes the per-command matrices under a randomized stationary Markov
  /// decision matrix `policy` (num_states x num_commands, rows summing
  /// to 1): P_pi(s, .) = sum_a policy(s, a) P_a(s, .)   (paper Eq. 5).
  MarkovChain under_policy(const linalg::Matrix& policy) const;

 private:
  std::vector<linalg::Matrix> matrices_;
};

}  // namespace dpm::markov
