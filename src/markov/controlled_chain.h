// Controlled (command-dependent) Markov chains, paper Section III-A.
#pragma once

#include <memory>
#include <vector>

#include "markov/markov_chain.h"
#include "markov/sparse_chain.h"

namespace dpm::markov {

/// A stationary controllable Markov chain: one row-stochastic matrix per
/// command (the representation the paper adopts for the SP and for the
/// composed system).
///
/// Storage is sparse-first: the CSR SparseControlledChain is the primary
/// representation every hot path consumes (`sparse()` / `row()`); dense
/// per-command matrices are materialized lazily, one command at a time,
/// only when a reference path asks via `matrix()`.
///
/// Invariant: all commands share one order; every row is stochastic
/// (validated at construction).
class ControlledMarkovChain {
 public:
  /// From dense matrices (reference construction; validates and converts
  /// to CSR, keeping the provided matrices as the dense cache).
  explicit ControlledMarkovChain(std::vector<linalg::Matrix> per_command,
                                 double tol = 1e-9);

  /// From an already-validated sparse chain.  No densification happens
  /// unless `matrix()` is called.
  explicit ControlledMarkovChain(SparseControlledChain chain);

  // Copies share no state; the dense cache is dropped (it re-materializes
  // on demand) so copying stays cheap for sparse-only chains.
  ControlledMarkovChain(const ControlledMarkovChain& other)
      : sparse_(other.sparse_) {}
  ControlledMarkovChain& operator=(const ControlledMarkovChain& other) {
    sparse_ = other.sparse_;
    dense_cache_.clear();
    return *this;
  }
  ControlledMarkovChain(ControlledMarkovChain&&) = default;
  ControlledMarkovChain& operator=(ControlledMarkovChain&&) = default;

  std::size_t num_states() const noexcept { return sparse_.num_states(); }
  std::size_t num_commands() const noexcept {
    return sparse_.num_commands();
  }

  /// The CSR representation (hot paths).
  const SparseControlledChain& sparse() const noexcept { return sparse_; }

  /// The sparse row P_a(s, .).
  TransitionRowView row(std::size_t command, std::size_t state) const {
    return sparse_.row(command, state);
  }

  /// Dense view of one command's matrix.  Densified on first use and
  /// cached; reference paths and small models only — O(n^2) memory per
  /// command.
  const linalg::Matrix& matrix(std::size_t command) const;

  double transition(std::size_t from, std::size_t to,
                    std::size_t command) const {
    return sparse_.transition(from, to, command);
  }

  /// Mixes the per-command matrices under a randomized stationary Markov
  /// decision matrix `policy` (num_states x num_commands, rows summing
  /// to 1): P_pi(s, .) = sum_a policy(s, a) P_a(s, .)   (paper Eq. 5).
  /// Allocates a fresh dense chain per call — hot loops should use
  /// sparse().under_policy_rows() with a reused workspace instead.
  MarkovChain under_policy(const linalg::Matrix& policy) const;

 private:
  SparseControlledChain sparse_;
  // Lazy per-command dense cache (nullptr until requested).  unique_ptr
  // keeps `matrix()` references stable across cache growth.
  mutable std::vector<std::unique_ptr<linalg::Matrix>> dense_cache_;
};

}  // namespace dpm::markov
