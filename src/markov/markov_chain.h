// Discrete-time stationary Markov chains (paper Section III).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace dpm::markov {

/// Thrown when a matrix fails row-stochastic validation or dimensions
/// disagree.
class MarkovError : public std::runtime_error {
 public:
  explicit MarkovError(const std::string& what) : std::runtime_error(what) {}
};

/// Validates that `p` is square, entries in [0,1] and rows sum to 1
/// within `tol`; throws MarkovError otherwise.  `what` names the matrix
/// in error messages.
void validate_stochastic(const linalg::Matrix& p, const std::string& what,
                         double tol = 1e-9);

/// A stationary Markov chain over states {0, ..., n-1} with one-step
/// transition matrix P (row-stochastic).
///
/// Invariant (established at construction): P is row-stochastic.
class MarkovChain {
 public:
  explicit MarkovChain(linalg::Matrix transition, double tol = 1e-9);

  std::size_t num_states() const noexcept { return p_.rows(); }
  const linalg::Matrix& transition_matrix() const noexcept { return p_; }
  double transition(std::size_t from, std::size_t to) const {
    return p_(from, to);
  }

  /// One-step distribution evolution: returns dist * P.
  linalg::Vector evolve(const linalg::Vector& dist) const;

  /// n-step evolution.
  linalg::Vector evolve(linalg::Vector dist, std::size_t steps) const;

  /// Stationary distribution pi with pi P = pi, sum(pi) = 1, solved as a
  /// linear system (one balance equation replaced by normalization).
  /// Requires a unique stationary distribution (e.g. irreducible chain);
  /// throws MarkovError when the linear system is singular.
  linalg::Vector stationary_distribution() const;

  /// Discounted occupancy u = p0 (I - gamma P)^{-1}: u_s is the expected
  /// discounted number of visits to s before the geometric stopping time
  /// with survival gamma (the paper's trap-state construction, Fig. 5).
  linalg::Vector discounted_occupancy(const linalg::Vector& p0,
                                      double gamma) const;

  /// True when every state is reachable from every other (single
  /// communicating class), via BFS on the support graph.
  bool is_irreducible() const;

  /// Expected geometric transition time 1/p (paper Eq. 2); infinity when
  /// p == 0.
  static double expected_transition_time(double prob_per_step);

 private:
  linalg::Matrix p_;
};

}  // namespace dpm::markov
