// CSR controlled Markov chains: the sparse counterpart of
// ControlledMarkovChain.
//
// DPM system models reach only a handful of successor states per
// (state, command) pair (the SR moves to few neighbors, the queue to at
// most two lengths), so the composed transition matrices are extremely
// sparse.  This type stores one compressed-sparse-row matrix per command
// and is the representation every hot path consumes: model composition,
// policy mixing, discounted policy evaluation, and the optimizer's LP
// assembly all run in O(nnz) instead of O(n^2 * na).
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "linalg/sparse_lu.h"
#include "markov/markov_chain.h"
#include "sim/hash.h"

namespace dpm::markov {

struct MixedChainCsr;  // fused policy-mixed rows (markov/occupancy.h)

/// One sparse transition row: (successor state, probability) pairs with
/// unique, sorted successor indices.
using TransitionRow = std::vector<std::pair<std::size_t, double>>;

/// A (successor, probability) view into one CSR row.
using TransitionRowView = std::span<const std::pair<std::size_t, double>>;

/// Stationary controllable Markov chain in CSR form: per command, the
/// rows of a row-stochastic matrix stored as (successor, probability)
/// entries.
///
/// Invariant: all commands share one order n; every row has entries in
/// [0, 1] with unique sorted successors summing to 1 (validated at
/// construction within `tol`; exact zeros are dropped from the pattern).
class SparseControlledChain {
 public:
  /// Assembles from per-command, per-state rows: `rows[a][s]` lists the
  /// (successor, probability) entries of P_a(s, .).  Entries may be
  /// unsorted and may repeat a successor (duplicates are summed).
  SparseControlledChain(std::size_t num_states,
                        std::vector<std::vector<TransitionRow>> rows,
                        double tol = 1e-9);

  /// Converts a dense per-command family (the reference representation).
  static SparseControlledChain from_dense(
      const std::vector<linalg::Matrix>& per_command, double tol = 1e-9);

  std::size_t num_states() const noexcept { return n_; }
  std::size_t num_commands() const noexcept {
    return commands_.size();
  }
  /// Total stored transition probabilities across all commands.
  std::size_t nonzeros() const noexcept;

  /// The sparse row P_a(s, .).
  TransitionRowView row(std::size_t command, std::size_t state) const;

  /// Element lookup (binary search within the row; for spot checks, not
  /// hot loops).  Zero when (from, to) is not in command's pattern.
  double transition(std::size_t from, std::size_t to,
                    std::size_t command) const;

  /// Densifies one command's matrix (reference paths and tests).
  linalg::Matrix to_dense(std::size_t command) const;

  /// Sparse rows of the policy-mixed chain
  ///   P_pi(s, .) = sum_a policy(s, a) P_a(s, .)     (paper Eq. 5)
  /// written into `rows_out` (resized to n).  Row and scratch capacity
  /// is reused across calls, so a caller evaluating many policies on one
  /// model allocates only on the first mix.  Throws MarkovError on shape
  /// mismatch, negative decision weights, or rows not summing to 1.
  void under_policy_rows(const linalg::Matrix& policy,
                         std::vector<TransitionRow>& rows_out) const;

  /// Fused-CSR variant of under_policy_rows: mixes directly into one
  /// contiguous entry array (`out.entries` + `out.row_ptr`), the form
  /// the power-accumulation occupancy evaluator consumes.  Capacity is
  /// reused across calls — a caller sweeping many policies over one
  /// model stops allocating after the first mix.  Same validation and
  /// the same sorted-unique row content as under_policy_rows.
  void under_policy_csr(const linalg::Matrix& policy,
                        MixedChainCsr& out) const;

  /// Convenience wrapper returning a dense validated MarkovChain (the
  /// historical contract; reference paths only).
  MarkovChain under_policy(const linalg::Matrix& policy) const;

  /// Streams the canonical content of the chain into `h`: order, command
  /// count, and every CSR row as (successor, probability) entries.
  /// Construction sorts entries and sums duplicates, so two chains
  /// assembled from the same transitions in any insertion order hash
  /// equal — the content-address contract of the scenario result cache.
  void hash_into(sim::Fnv1a& h) const;

 private:
  struct Csr {
    std::vector<std::size_t> row_ptr;  // size n + 1
    std::vector<std::pair<std::size_t, double>> entries;  // sorted per row
  };

  std::size_t n_ = 0;
  std::vector<Csr> commands_;
};

/// Sparse columns of (I - gamma P)^T for a chain whose row s is
/// `row_of(s)`: column s is e_s - gamma * P(s, .), i.e. the CSR rows are
/// literally the columns of the transposed system — no transpose pass.
/// Shared by discounted occupancy and deterministic policy evaluation
/// (ftran solves the transposed system, btran the original one).
std::vector<linalg::SparseColumn> discounted_transposed_columns(
    std::size_t n, double gamma,
    const std::function<TransitionRowView(std::size_t)>& row_of);

/// Discounted occupancy u = p0 (I - gamma P)^{-1} for a chain given by
/// sparse `rows` (the output of under_policy_rows): u_s is the expected
/// discounted number of visits to s.  Solved with the sparse LU — the
/// O(nnz)-flavored counterpart of MarkovChain::discounted_occupancy.
/// Throws MarkovError on bad gamma/p0 or a singular system (which cannot
/// happen for a stochastic P and gamma < 1 unless rows are malformed).
linalg::Vector discounted_occupancy_sparse(
    const std::vector<TransitionRow>& rows, const linalg::Vector& p0,
    double gamma);

}  // namespace dpm::markov
