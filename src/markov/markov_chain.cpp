#include "markov/markov_chain.h"

#include <cmath>
#include <limits>
#include <queue>

#include "linalg/lu.h"

namespace dpm::markov {

void validate_stochastic(const linalg::Matrix& p, const std::string& what,
                         double tol) {
  if (p.rows() != p.cols()) {
    throw MarkovError(what + ": transition matrix must be square");
  }
  for (std::size_t i = 0; i < p.rows(); ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < p.cols(); ++j) {
      const double v = p(i, j);
      if (v < -tol || v > 1.0 + tol || std::isnan(v)) {
        throw MarkovError(what + ": entry (" + std::to_string(i) + "," +
                          std::to_string(j) + ") = " + std::to_string(v) +
                          " is not a probability");
      }
      row_sum += v;
    }
    if (std::abs(row_sum - 1.0) > tol) {
      throw MarkovError(what + ": row " + std::to_string(i) + " sums to " +
                        std::to_string(row_sum) + ", expected 1");
    }
  }
}

MarkovChain::MarkovChain(linalg::Matrix transition, double tol)
    : p_(std::move(transition)) {
  validate_stochastic(p_, "MarkovChain", tol);
}

linalg::Vector MarkovChain::evolve(const linalg::Vector& dist) const {
  if (dist.size() != num_states()) {
    throw MarkovError("evolve: distribution size mismatch");
  }
  return linalg::left_multiply(dist, p_);
}

linalg::Vector MarkovChain::evolve(linalg::Vector dist,
                                   std::size_t steps) const {
  for (std::size_t k = 0; k < steps; ++k) dist = evolve(dist);
  return dist;
}

linalg::Vector MarkovChain::stationary_distribution() const {
  const std::size_t n = num_states();
  // Solve (P^T - I) pi = 0 with the last equation replaced by
  // sum(pi) = 1.
  linalg::Matrix a(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = p_(j, i) - (i == j ? 1.0 : 0.0);
    }
  }
  for (std::size_t j = 0; j < n; ++j) a(n - 1, j) = 1.0;
  linalg::Vector b(n, 0.0);
  b[n - 1] = 1.0;
  linalg::Vector pi = linalg::solve(a, b);
  for (double& v : pi) {
    if (v < 0.0 && v > -1e-10) v = 0.0;  // scrub roundoff
  }
  return pi;
}

linalg::Vector MarkovChain::discounted_occupancy(const linalg::Vector& p0,
                                                 double gamma) const {
  const std::size_t n = num_states();
  if (p0.size() != n) {
    throw MarkovError("discounted_occupancy: p0 size mismatch");
  }
  if (gamma <= 0.0 || gamma >= 1.0) {
    throw MarkovError("discounted_occupancy: gamma must be in (0,1)");
  }
  // u = p0 (I - gamma P)^{-1}  <=>  (I - gamma P)^T u^T = p0^T.
  linalg::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = (i == j ? 1.0 : 0.0) - gamma * p_(i, j);
    }
  }
  return linalg::LuDecomposition(std::move(a)).solve_transposed(p0);
}

bool MarkovChain::is_irreducible() const {
  const std::size_t n = num_states();
  // Forward reachability from 0 and from 0 in the reversed graph;
  // irreducible iff both cover all states (Kosaraju-style single check
  // suffices for one candidate SCC covering everything).
  const auto reachable = [&](bool reversed) {
    std::vector<bool> seen(n, false);
    std::queue<std::size_t> frontier;
    frontier.push(0);
    seen[0] = true;
    std::size_t count = 1;
    while (!frontier.empty()) {
      const std::size_t s = frontier.front();
      frontier.pop();
      for (std::size_t t = 0; t < n; ++t) {
        const double w = reversed ? p_(t, s) : p_(s, t);
        if (w > 0.0 && !seen[t]) {
          seen[t] = true;
          ++count;
          frontier.push(t);
        }
      }
    }
    return count == n;
  };
  return reachable(false) && reachable(true);
}

double MarkovChain::expected_transition_time(double prob_per_step) {
  if (prob_per_step < 0.0 || prob_per_step > 1.0) {
    throw MarkovError("expected_transition_time: probability out of range");
  }
  if (prob_per_step == 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return 1.0 / prob_per_step;
}

}  // namespace dpm::markov
