// O(nnz * iters) discounted-occupancy evaluation.
//
// The LP pipeline and the scenario harness evaluate many policies
// against one model: mix the per-command CSR rows under a policy, then
// compute u = p0 (I - gamma P_pi)^{-1}.  The LU route costs a full
// sparse factorization per policy — at n*na = 56k that is seconds per
// evaluation, and the factor is dense-tail dominated.  This header
// replaces it with power accumulation,
//
//   u = sum_{k<K} gamma^k p0 P^k  +  gamma^K / (1 - gamma) * x_K,
//
// where x_k = p0 P^k and the closed-form tail exploits that x_k is
// near-stationary once the iteration stops moving (the remaining
// geometric sum collapses).  The loop is two O(nnz) sweeps per
// iteration over a *fused* CSR (one contiguous entry array — no
// per-row vector hops) and touches no allocator: all state lives in a
// caller-owned workspace, so steady-state evaluation performs zero
// heap allocations (guarded by test_occupancy_power.cpp).
//
// Small systems and non-converging chains fall back to the exact LU
// solve: below kPowerMinStates a factorization is cheaper than ~100
// power iterations, and a chain that has not met the error bound after
// kMaxIters (slowly mixing + gamma near 1) is handed to the direct
// solver rather than iterated forever.
#pragma once

#include <cstddef>
#include <vector>

#include "markov/sparse_chain.h"

namespace dpm::markov {

/// Policy-mixed chain in fused CSR form: row s of P_pi occupies
/// entries [row_ptr[s], row_ptr[s+1]) with unique sorted successors.
/// Produced by SparseControlledChain::under_policy_csr, which reuses
/// the arrays' capacity across policies.
struct MixedChainCsr {
  std::vector<std::size_t> row_ptr;  // size n + 1 (empty before first mix)
  std::vector<std::pair<std::size_t, double>> entries;

  std::size_t num_states() const noexcept {
    return row_ptr.empty() ? 0 : row_ptr.size() - 1;
  }
  TransitionRowView row(std::size_t s) const noexcept {
    return TransitionRowView(entries.data() + row_ptr[s],
                             row_ptr[s + 1] - row_ptr[s]);
  }
};

/// Reusable state for discounted_occupancy_power.  `u` holds the last
/// result; `iterations`, `delta`, and `used_lu` describe how it was
/// obtained (used_lu covers both the small-size gate and the kMaxIters
/// safety fallback).
struct OccupancyWorkspace {
  linalg::Vector x;
  linalg::Vector xn;
  linalg::Vector u;
  std::size_t iterations = 0;
  double delta = 0.0;
  bool used_lu = false;
};

/// Below this order the direct LU solve wins (and keeps the historic
/// exact results on the small case-study models byte-for-byte).
inline constexpr std::size_t kPowerMinStates = 512;
/// Power-iteration safety valve: past this, fall back to LU.
inline constexpr std::size_t kPowerMaxIters = 20000;
/// Convergence bound on the truncation error of u (see the error
/// analysis in occupancy.cpp): delta * gamma^k / (1 - gamma)^2.
inline constexpr double kPowerTol = 1e-12;

/// Discounted occupancy u = p0 (I - gamma P)^{-1} over a fused mixed
/// chain.  Returns a reference to ws.u; the workspace owns all scratch
/// and is reused across calls (zero steady-state allocations on the
/// power path).  Throws MarkovError on bad gamma/p0 shape or (via the
/// LU fallback) a singular system.
const linalg::Vector& discounted_occupancy_power(const MixedChainCsr& chain,
                                                 const linalg::Vector& p0,
                                                 double gamma,
                                                 OccupancyWorkspace& ws);

}  // namespace dpm::markov
