#include "markov/occupancy.h"

#include <cmath>
#include <cstdlib>

#include "linalg/sparse_lu.h"

namespace dpm::markov {

namespace {

/// Direct solve M u = p0 with M = (I - gamma P)^T — the exact route,
/// used below the size gate and as the non-convergence fallback.
void occupancy_lu(const MixedChainCsr& chain, const linalg::Vector& p0,
                  double gamma, linalg::Vector& u) {
  const std::size_t n = chain.num_states();
  const std::vector<linalg::SparseColumn> cols = discounted_transposed_columns(
      n, gamma, [&chain](std::size_t j) { return chain.row(j); });
  linalg::SparseLu lu;
  if (!lu.factorize(n, cols)) {
    throw MarkovError("discounted_occupancy: singular system");
  }
  u = p0;
  lu.ftran(u);
}

}  // namespace

const linalg::Vector& discounted_occupancy_power(const MixedChainCsr& chain,
                                                 const linalg::Vector& p0,
                                                 double gamma,
                                                 OccupancyWorkspace& ws) {
  const std::size_t n = chain.num_states();
  if (p0.size() != n) {
    throw MarkovError("discounted_occupancy: p0 size mismatch");
  }
  if (gamma <= 0.0 || gamma >= 1.0) {
    throw MarkovError("discounted_occupancy: gamma must be in (0,1)");
  }
  ws.iterations = 0;
  ws.delta = 0.0;
  ws.used_lu = false;
  if (n < kPowerMinStates) {
    ws.used_lu = true;
    occupancy_lu(chain, p0, gamma, ws.u);
    return ws.u;
  }

  // Power accumulation.  Error analysis for the truncation at step K:
  // the exact remainder is sum_{k>=K} gamma^k x_k and the tail
  // substitutes x_K for every x_k, so the error is bounded by
  //   sum_{k>=K} gamma^k |x_k - x_K|_1
  //     <= sum_{k>=K} gamma^k (k - K) delta_K     (P is a contraction
  //     = gamma^K delta_K * gamma / (1-gamma)^2    in |.|_1 steps)
  // with delta_K = |x_{K+1} - x_K|_1 — the bound tested each step.
  ws.x = p0;
  ws.xn.assign(n, 0.0);
  ws.u.assign(n, 0.0);
  const std::size_t* row_ptr = chain.row_ptr.data();
  const auto* entries = chain.entries.data();
  double gk = 1.0;
  for (std::size_t it = 0; it < kPowerMaxIters; ++it) {
    double* x = ws.x.data();
    double* xn = ws.xn.data();
    double* u = ws.u.data();
    for (std::size_t s = 0; s < n; ++s) u[s] += gk * x[s];
    for (std::size_t s = 0; s < n; ++s) xn[s] = 0.0;
    // xn = x P over the fused rows: one contiguous pass over entries.
    for (std::size_t s = 0; s < n; ++s) {
      const double xs = x[s];
      if (xs == 0.0) continue;
      const std::size_t end = row_ptr[s + 1];
      for (std::size_t k = row_ptr[s]; k < end; ++k) {
        xn[entries[k].first] += xs * entries[k].second;
      }
    }
    double delta = 0.0;
    for (std::size_t s = 0; s < n; ++s) delta += std::abs(xn[s] - x[s]);
    ws.x.swap(ws.xn);
    gk *= gamma;
    ws.iterations = it + 1;
    ws.delta = delta;
    if (delta * gk / ((1.0 - gamma) * (1.0 - gamma)) < kPowerTol) {
      // Stationarity tail: the remaining geometric sum of the (now
      // essentially fixed) iterate.
      const double* xf = ws.x.data();
      double* u = ws.u.data();
      const double scale = gk / (1.0 - gamma);
      for (std::size_t s = 0; s < n; ++s) u[s] += scale * xf[s];
      return ws.u;
    }
  }
  // Slowly mixing chain: hand the system to the exact solver.
  ws.used_lu = true;
  occupancy_lu(chain, p0, gamma, ws.u);
  return ws.u;
}

}  // namespace dpm::markov
