#include "markov/sparse_chain.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "linalg/sparse_lu.h"
#include "markov/occupancy.h"

namespace dpm::markov {

namespace {

/// Sorts `row` by successor and sums duplicate successors in place.
/// Returns the total probability mass; entries that sum to exactly zero
/// are dropped from the pattern.
double sort_and_merge(TransitionRow& row) {
  std::sort(row.begin(), row.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t out = 0;
  double row_sum = 0.0;
  for (std::size_t k = 0; k < row.size(); ++k) {
    auto [to, p] = row[k];
    while (k + 1 < row.size() && row[k + 1].first == to) {
      p += row[++k].second;
    }
    row_sum += p;
    if (p != 0.0) row[out++] = {to, p};
  }
  row.resize(out);
  return row_sum;
}

/// sort_and_merge plus validation that `row` is a probability
/// distribution over states < n within `tol`.
void normalize_row(TransitionRow& row, std::size_t n, std::size_t command,
                   std::size_t state, double tol) {
  const double row_sum = sort_and_merge(row);
  const auto where = [&] {
    return "SparseControlledChain[command " + std::to_string(command) +
           "] row " + std::to_string(state);
  };
  for (const auto& [to, p] : row) {
    if (to >= n) {
      throw MarkovError(where() + ": successor index out of range");
    }
    if (p < -tol || p > 1.0 + tol || std::isnan(p)) {
      throw MarkovError(where() + ": entry " + std::to_string(p) +
                        " is not a probability");
    }
  }
  if (std::abs(row_sum - 1.0) > tol) {
    throw MarkovError(where() + " sums to " + std::to_string(row_sum) +
                      ", expected 1");
  }
}

}  // namespace

SparseControlledChain::SparseControlledChain(
    std::size_t num_states, std::vector<std::vector<TransitionRow>> rows,
    double tol)
    : n_(num_states) {
  if (rows.empty()) {
    throw MarkovError("SparseControlledChain: needs at least one command");
  }
  commands_.reserve(rows.size());
  for (std::size_t a = 0; a < rows.size(); ++a) {
    if (rows[a].size() != n_) {
      throw MarkovError("SparseControlledChain: command " + std::to_string(a) +
                        " has " + std::to_string(rows[a].size()) +
                        " rows, expected " + std::to_string(n_));
    }
    Csr csr;
    csr.row_ptr.reserve(n_ + 1);
    csr.row_ptr.push_back(0);
    std::size_t nnz = 0;
    for (const TransitionRow& row : rows[a]) nnz += row.size();
    csr.entries.reserve(nnz);
    for (std::size_t s = 0; s < n_; ++s) {
      normalize_row(rows[a][s], n_, a, s, tol);
      csr.entries.insert(csr.entries.end(), rows[a][s].begin(),
                         rows[a][s].end());
      csr.row_ptr.push_back(csr.entries.size());
    }
    commands_.push_back(std::move(csr));
  }
}

SparseControlledChain SparseControlledChain::from_dense(
    const std::vector<linalg::Matrix>& per_command, double tol) {
  if (per_command.empty()) {
    throw MarkovError("SparseControlledChain: needs at least one command");
  }
  const std::size_t n = per_command.front().rows();
  std::vector<std::vector<TransitionRow>> rows(per_command.size());
  for (std::size_t a = 0; a < per_command.size(); ++a) {
    const linalg::Matrix& p = per_command[a];
    if (p.rows() != n || p.cols() != n) {
      throw MarkovError(
          "SparseControlledChain: command matrices must share one order");
    }
    rows[a].resize(n);
    for (std::size_t s = 0; s < n; ++s) {
      const double* prow = p.data() + s * n;
      for (std::size_t t = 0; t < n; ++t) {
        if (prow[t] != 0.0) rows[a][s].emplace_back(t, prow[t]);
      }
    }
  }
  return SparseControlledChain(n, std::move(rows), tol);
}

std::size_t SparseControlledChain::nonzeros() const noexcept {
  std::size_t nnz = 0;
  for (const Csr& c : commands_) nnz += c.entries.size();
  return nnz;
}

TransitionRowView SparseControlledChain::row(std::size_t command,
                                             std::size_t state) const {
  const Csr& c = commands_.at(command);
  if (state >= n_) {
    throw MarkovError("SparseControlledChain: state index out of range");
  }
  return TransitionRowView(c.entries.data() + c.row_ptr[state],
                           c.row_ptr[state + 1] - c.row_ptr[state]);
}

double SparseControlledChain::transition(std::size_t from, std::size_t to,
                                         std::size_t command) const {
  const TransitionRowView r = row(command, from);
  const auto it = std::lower_bound(
      r.begin(), r.end(), to,
      [](const auto& entry, std::size_t t) { return entry.first < t; });
  return (it != r.end() && it->first == to) ? it->second : 0.0;
}

linalg::Matrix SparseControlledChain::to_dense(std::size_t command) const {
  linalg::Matrix p(n_, n_);
  for (std::size_t s = 0; s < n_; ++s) {
    for (const auto& [t, v] : row(command, s)) p(s, t) = v;
  }
  return p;
}

void SparseControlledChain::under_policy_rows(
    const linalg::Matrix& policy, std::vector<TransitionRow>& rows_out) const {
  const std::size_t na = num_commands();
  if (policy.rows() != n_ || policy.cols() != na) {
    throw MarkovError("under_policy: policy matrix shape mismatch");
  }
  rows_out.resize(n_);
  for (std::size_t s = 0; s < n_; ++s) {
    TransitionRow& mixed = rows_out[s];
    mixed.clear();
    double row_sum = 0.0;
    for (std::size_t a = 0; a < na; ++a) {
      const double w = policy(s, a);
      if (w < -1e-9) {
        throw MarkovError("under_policy: negative decision probability");
      }
      row_sum += w;
      if (w == 0.0) continue;
      for (const auto& [t, p] : row(a, s)) mixed.emplace_back(t, w * p);
    }
    if (std::abs(row_sum - 1.0) > 1e-7) {
      throw MarkovError("under_policy: decision row " + std::to_string(s) +
                        " does not sum to 1");
    }
    // Merge the per-command contributions (each sorted) into one sorted
    // unique row.  na is small, so one sort of the concatenation beats a
    // k-way merge.
    sort_and_merge(mixed);
  }
}

void SparseControlledChain::under_policy_csr(const linalg::Matrix& policy,
                                             MixedChainCsr& out) const {
  const std::size_t na = num_commands();
  if (policy.rows() != n_ || policy.cols() != na) {
    throw MarkovError("under_policy: policy matrix shape mismatch");
  }
  out.row_ptr.resize(n_ + 1);
  out.entries.clear();  // keeps capacity
  out.row_ptr[0] = 0;
  for (std::size_t s = 0; s < n_; ++s) {
    const std::size_t begin = out.entries.size();
    double row_sum = 0.0;
    for (std::size_t a = 0; a < na; ++a) {
      const double w = policy(s, a);
      if (w < -1e-9) {
        throw MarkovError("under_policy: negative decision probability");
      }
      row_sum += w;
      if (w == 0.0) continue;
      for (const auto& [t, p] : row(a, s)) out.entries.emplace_back(t, w * p);
    }
    if (std::abs(row_sum - 1.0) > 1e-7) {
      throw MarkovError("under_policy: decision row " + std::to_string(s) +
                        " does not sum to 1");
    }
    // Sort + merge the row's slice in place (mirrors sort_and_merge,
    // but on the fused array — no per-row vector).
    std::sort(out.entries.begin() + begin, out.entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::size_t w_out = begin;
    for (std::size_t k = begin; k < out.entries.size(); ++k) {
      auto [to, p] = out.entries[k];
      while (k + 1 < out.entries.size() && out.entries[k + 1].first == to) {
        p += out.entries[++k].second;
      }
      if (p != 0.0) out.entries[w_out++] = {to, p};
    }
    out.entries.resize(w_out);
    out.row_ptr[s + 1] = w_out;
  }
}

MarkovChain SparseControlledChain::under_policy(
    const linalg::Matrix& policy) const {
  std::vector<TransitionRow> rows;
  under_policy_rows(policy, rows);
  linalg::Matrix mixed(n_, n_);
  for (std::size_t s = 0; s < n_; ++s) {
    for (const auto& [t, p] : rows[s]) mixed(s, t) = p;
  }
  return MarkovChain(std::move(mixed), 1e-6);
}

void SparseControlledChain::hash_into(sim::Fnv1a& h) const {
  h.add_string("SparseControlledChain");
  h.add_size(n_);
  h.add_size(commands_.size());
  for (const Csr& csr : commands_) {
    // The row_ptr array is implied by per-row entry counts; hashing the
    // counts plus the sorted unique entries is the canonical form.
    for (std::size_t s = 0; s < n_; ++s) {
      const std::size_t begin = csr.row_ptr[s];
      const std::size_t end = csr.row_ptr[s + 1];
      h.add_size(end - begin);
      for (std::size_t k = begin; k < end; ++k) {
        h.add_size(csr.entries[k].first);
        h.add_double(csr.entries[k].second);
      }
    }
  }
}

std::vector<linalg::SparseColumn> discounted_transposed_columns(
    std::size_t n, double gamma,
    const std::function<TransitionRowView(std::size_t)>& row_of) {
  std::vector<linalg::SparseColumn> cols(n);
  for (std::size_t j = 0; j < n; ++j) {
    const TransitionRowView row = row_of(j);
    linalg::SparseColumn& col = cols[j];
    col.reserve(row.size() + 1);
    bool diag_seen = false;
    for (const auto& [t, p] : row) {
      if (t == j) {
        col.emplace_back(j, 1.0 - gamma * p);
        diag_seen = true;
      } else {
        col.emplace_back(t, -gamma * p);
      }
    }
    if (!diag_seen) col.emplace_back(j, 1.0);
  }
  return cols;
}

linalg::Vector discounted_occupancy_sparse(
    const std::vector<TransitionRow>& rows, const linalg::Vector& p0,
    double gamma) {
  const std::size_t n = rows.size();
  if (p0.size() != n) {
    throw MarkovError("discounted_occupancy: p0 size mismatch");
  }
  if (gamma <= 0.0 || gamma >= 1.0) {
    throw MarkovError("discounted_occupancy: gamma must be in (0,1)");
  }
  // u = p0 (I - gamma P)^{-1}  <=>  M u = p0 with M = (I - gamma P)^T.
  const std::vector<linalg::SparseColumn> cols = discounted_transposed_columns(
      n, gamma, [&rows](std::size_t j) { return TransitionRowView(rows[j]); });
  linalg::SparseLu lu;
  if (!lu.factorize(n, cols)) {
    throw MarkovError("discounted_occupancy: singular system");
  }
  linalg::Vector u = p0;
  lu.ftran(u);
  return u;
}

}  // namespace dpm::markov
