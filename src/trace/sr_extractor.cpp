#include "trace/sr_extractor.h"

#include <algorithm>
#include <string>

namespace dpm::trace {

dpm::ServiceRequester extract_sr(const std::vector<unsigned>& binary_stream,
                                 const ExtractorOptions& options) {
  const std::size_t k = options.memory;
  if (k == 0 || k > 20) {
    throw TraceError("extract_sr: memory must be in [1, 20]");
  }
  if (binary_stream.size() < k + 1) {
    throw TraceError("extract_sr: stream shorter than memory + 1");
  }
  const std::size_t n = std::size_t{1} << k;
  const std::size_t mask = n - 1;

  // Count transitions between history states.
  linalg::Matrix counts(n, n);
  std::size_t state = 0;
  for (std::size_t i = 0; i < k; ++i) {
    state = ((state << 1) | (binary_stream[i] > 0 ? 1 : 0)) & mask;
  }
  for (std::size_t i = k; i < binary_stream.size(); ++i) {
    const std::size_t next =
        ((state << 1) | (binary_stream[i] > 0 ? 1 : 0)) & mask;
    counts(state, next) += 1.0;
    state = next;
  }

  linalg::Matrix p(n, n);
  for (std::size_t s = 0; s < n; ++s) {
    double total = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      counts(s, t) += options.smoothing;
      total += counts(s, t);
    }
    if (total <= 0.0) {
      // State never observed: uniform over its two successors (only
      // (s<<1)&mask and ((s<<1)|1)&mask are reachable in one step).
      p(s, (s << 1) & mask) = 0.5;
      p(s, ((s << 1) | 1) & mask) += 0.5;
      continue;
    }
    for (std::size_t t = 0; t < n; ++t) p(s, t) = counts(s, t) / total;
  }

  std::vector<unsigned> requests(n);
  std::vector<std::string> names(n);
  for (std::size_t s = 0; s < n; ++s) {
    requests[s] = static_cast<unsigned>(s & 1);
    std::string bits;
    for (std::size_t b = k; b-- > 0;) {
      bits.push_back(((s >> b) & 1) ? '1' : '0');
    }
    names[s] = "h" + bits;
  }
  return dpm::ServiceRequester(std::move(p), std::move(requests),
                               std::move(names));
}

dpm::sim::SrStateTracker history_tracker(std::size_t memory) {
  if (memory == 0 || memory > 20) {
    throw TraceError("history_tracker: memory must be in [1, 20]");
  }
  const std::size_t mask = (std::size_t{1} << memory) - 1;
  return [mask](std::size_t prev, unsigned arrivals) {
    return ((prev << 1) | (arrivals > 0 ? 1u : 0u)) & mask;
  };
}

StreamStats analyze_stream(const std::vector<unsigned>& binary_stream) {
  StreamStats st;
  if (binary_stream.empty()) return st;
  std::size_t ones = 0;
  std::size_t busy_runs = 0, idle_runs = 0;
  std::size_t busy_total = 0, idle_total = 0;
  std::size_t run = 0;
  bool run_is_busy = binary_stream.front() > 0;
  for (const unsigned v : binary_stream) {
    const bool busy = v > 0;
    if (busy) ++ones;
    if (busy == run_is_busy) {
      ++run;
      continue;
    }
    (run_is_busy ? busy_runs : idle_runs) += 1;
    (run_is_busy ? busy_total : idle_total) += run;
    run_is_busy = busy;
    run = 1;
  }
  (run_is_busy ? busy_runs : idle_runs) += 1;
  (run_is_busy ? busy_total : idle_total) += run;

  st.request_rate =
      static_cast<double>(ones) / static_cast<double>(binary_stream.size());
  st.mean_burst_length =
      busy_runs > 0
          ? static_cast<double>(busy_total) / static_cast<double>(busy_runs)
          : 0.0;
  st.mean_idle_length =
      idle_runs > 0
          ? static_cast<double>(idle_total) / static_cast<double>(idle_runs)
          : 0.0;
  return st;
}

}  // namespace dpm::trace
