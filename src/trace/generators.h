// Synthetic workload generators.
//
// The paper characterizes its SR models from measured traces (Auspex
// file-system traces for the disk, Internet Traffic Archive logs for the
// web server, the monitoring package of [28] for the CPU).  Those traces
// are not redistributable; these generators produce streams with the
// same statistical structure the paper exploits — two-state Markov
// burstiness, heavier-tailed on/off activity, and the nonstationary
// editing+compilation mixture of Example 7.1 — so the identical
// extract-optimize-simulate pipeline runs end to end (see DESIGN.md,
// "Substitutions").
#pragma once

#include <cstdint>
#include <vector>

#include "trace/request_trace.h"

namespace dpm::trace {

/// Two-state Markov (Gilbert) binary arrival stream: in the idle state a
/// request slice starts with probability p01, in the busy state it
/// persists with probability 1 - p10.  This is exactly the process behind
/// the paper's two-state SR models (Example 3.2).
std::vector<unsigned> gilbert_stream(std::size_t slices, double p01,
                                     double p10, std::uint64_t seed);

/// On/off stream with geometric burst lengths and a heavier (mixture of
/// two geometrics) idle-length distribution — a closer stand-in for
/// measured disk/web traces, whose idle times are not memoryless.
struct OnOffParams {
  double mean_burst = 5.0;        // mean busy-run length (slices)
  double mean_idle_short = 10.0;  // mean of the short idle mode
  double mean_idle_long = 200.0;  // mean of the long idle mode
  double long_idle_fraction = 0.2;  // probability an idle run is long
};
std::vector<unsigned> on_off_stream(std::size_t slices,
                                    const OnOffParams& params,
                                    std::uint64_t seed);

/// "Editing" workload of Example 7.1: alternating moderate idle and
/// active periods (interactive usage).
std::vector<unsigned> editing_stream(std::size_t slices, std::uint64_t seed);

/// "Compilation" workload of Example 7.1: one long activity burst with
/// brief gaps (batch CPU usage).
std::vector<unsigned> compilation_stream(std::size_t slices,
                                         std::uint64_t seed);

/// Concatenation — the highly nonstationary, non-Markovian merged trace
/// the paper applies to the CPU case study in Fig. 10.
std::vector<unsigned> concat_streams(const std::vector<unsigned>& a,
                                     const std::vector<unsigned>& b);

/// Diurnal web-server-like stream: Gilbert modulated by a slow duty
/// cycle (busy hours vs quiet hours), standing in for the ITA logs of
/// Fig. 9(a).
std::vector<unsigned> diurnal_stream(std::size_t slices, std::size_t period,
                                     double peak_p01, double quiet_p01,
                                     double p10, std::uint64_t seed);

}  // namespace dpm::trace
