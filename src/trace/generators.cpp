#include "trace/generators.h"

#include <algorithm>
#include <cmath>

#include "sim/rng.h"

namespace dpm::trace {

namespace {

using dpm::sim::Rng;

// Geometric run length with the given mean (>= 1 slice).
std::size_t geometric_run(Rng& rng, double mean) {
  const double p = 1.0 / std::max(1.0, mean);
  std::size_t len = 1;
  while (!rng.bernoulli(p)) ++len;
  return len;
}

}  // namespace

std::vector<unsigned> gilbert_stream(std::size_t slices, double p01,
                                     double p10, std::uint64_t seed) {
  if (p01 < 0.0 || p01 > 1.0 || p10 < 0.0 || p10 > 1.0) {
    throw TraceError("gilbert_stream: probabilities out of range");
  }
  Rng rng(seed);
  std::vector<unsigned> out(slices, 0);
  unsigned state = 0;
  for (std::size_t i = 0; i < slices; ++i) {
    state = state == 0 ? (rng.bernoulli(p01) ? 1u : 0u)
                       : (rng.bernoulli(p10) ? 0u : 1u);
    out[i] = state;
  }
  return out;
}

std::vector<unsigned> on_off_stream(std::size_t slices,
                                    const OnOffParams& params,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<unsigned> out;
  out.reserve(slices);
  bool busy = false;
  while (out.size() < slices) {
    std::size_t run;
    if (busy) {
      run = geometric_run(rng, params.mean_burst);
    } else {
      const double mean = rng.bernoulli(params.long_idle_fraction)
                              ? params.mean_idle_long
                              : params.mean_idle_short;
      run = geometric_run(rng, mean);
    }
    for (std::size_t i = 0; i < run && out.size() < slices; ++i) {
      out.push_back(busy ? 1u : 0u);
    }
    busy = !busy;
  }
  return out;
}

std::vector<unsigned> editing_stream(std::size_t slices, std::uint64_t seed) {
  // Interactive usage: short keystroke/scroll bursts (mean 3 slices)
  // separated by think-time idles (mean 30 slices).
  OnOffParams p;
  p.mean_burst = 3.0;
  p.mean_idle_short = 30.0;
  p.mean_idle_long = 120.0;
  p.long_idle_fraction = 0.15;
  return on_off_stream(slices, p, seed);
}

std::vector<unsigned> compilation_stream(std::size_t slices,
                                         std::uint64_t seed) {
  // Batch usage: long compute bursts (mean 200 slices) with brief gaps
  // (mean 4 slices) — "a long activity burst".
  OnOffParams p;
  p.mean_burst = 200.0;
  p.mean_idle_short = 4.0;
  p.mean_idle_long = 8.0;
  p.long_idle_fraction = 0.1;
  return on_off_stream(slices, p, seed);
}

std::vector<unsigned> concat_streams(const std::vector<unsigned>& a,
                                     const std::vector<unsigned>& b) {
  std::vector<unsigned> out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

std::vector<unsigned> diurnal_stream(std::size_t slices, std::size_t period,
                                     double peak_p01, double quiet_p01,
                                     double p10, std::uint64_t seed) {
  if (period == 0) throw TraceError("diurnal_stream: period must be positive");
  Rng rng(seed);
  std::vector<unsigned> out(slices, 0);
  unsigned state = 0;
  for (std::size_t i = 0; i < slices; ++i) {
    // Smooth day/night modulation of the burst-start probability.
    const double phase =
        std::sin(2.0 * 3.14159265358979323846 *
                 static_cast<double>(i % period) / static_cast<double>(period));
    const double w = 0.5 * (1.0 + phase);  // 0 (night) .. 1 (peak)
    const double p01 = quiet_p01 + w * (peak_p01 - quiet_p01);
    state = state == 0 ? (rng.bernoulli(p01) ? 1u : 0u)
                       : (rng.bernoulli(p10) ? 0u : 1u);
    out[i] = state;
  }
  return out;
}

}  // namespace dpm::trace
