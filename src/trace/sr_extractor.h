// SR extractor: Markov service-requester models from request traces
// (paper Sec. V and Example 5.1; the "SR extractor" block of Fig. 7).
//
// A k-memory model has 2^k states, one per k-bit arrival history; the
// conditional transition probabilities are occurrence counts normalized
// per start state.  Fig. 13(b)'s memory-sensitivity experiment sweeps k.
#pragma once

#include <vector>

#include "dpm/service_requester.h"
#include "sim/simulator.h"
#include "trace/request_trace.h"

namespace dpm::trace {

struct ExtractorOptions {
  /// Memory k >= 1: states are the 2^k most recent arrival bits.
  std::size_t memory = 1;
  /// Laplace smoothing added to every transition count so states that
  /// were never left still get a valid (uniform-leaning) distribution.
  double smoothing = 0.0;
};

/// Builds a ServiceRequester from a binary arrival stream.
///
/// State encoding: the history bits b_{t-k+1} ... b_t read as an integer
/// with b_t as the least-significant bit; state s emits (s & 1) requests
/// per slice, so the 1-memory model reproduces Example 3.2's two-state
/// "0/1" SR.  Throws TraceError when the stream is shorter than k+1
/// slices or a state has no outgoing observations and smoothing is zero
/// (such rows fall back to uniform).
dpm::ServiceRequester extract_sr(const std::vector<unsigned>& binary_stream,
                                 const ExtractorOptions& options = {});

/// The SR-state tracker matching extract_sr's encoding, for trace-driven
/// simulation of policies optimized against a k-memory model:
/// next = ((prev << 1) | min(arrivals,1)) & (2^k - 1).
dpm::sim::SrStateTracker history_tracker(std::size_t memory);

/// Empirical per-slice arrival statistics of a binary stream, used by
/// tests and by EXPERIMENTS.md tables.
struct StreamStats {
  double request_rate = 0.0;       // fraction of slices with an arrival
  double mean_burst_length = 0.0;  // mean run of consecutive 1-slices
  double mean_idle_length = 0.0;   // mean run of consecutive 0-slices
};
StreamStats analyze_stream(const std::vector<unsigned>& binary_stream);

}  // namespace dpm::trace
