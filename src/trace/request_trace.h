// Time-stamped request traces and their discretization (paper Sec. V,
// Example 5.1).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace dpm::trace {

class TraceError : public std::runtime_error {
 public:
  explicit TraceError(const std::string& what) : std::runtime_error(what) {}
};

/// A time-stamped request record stream, as produced by measuring a real
/// system ("request trace" input of the tool, Fig. 7).  Timestamps are in
/// arbitrary time units, nondecreasing.
class RequestTrace {
 public:
  RequestTrace() = default;
  explicit RequestTrace(std::vector<double> timestamps);

  const std::vector<double>& timestamps() const noexcept {
    return timestamps_;
  }
  std::size_t num_requests() const noexcept { return timestamps_.size(); }
  double duration() const noexcept {
    return timestamps_.empty() ? 0.0 : timestamps_.back();
  }

  /// Discretizes with time resolution `tau` (Example 5.1): slice i
  /// counts the requests with timestamp in ((i-1)*tau, i*tau], i.e. a
  /// request at time t lands in slice ceil(t/tau).  The example's trace
  /// [2,5,6,7,12] at tau=1 becomes [0,0,1,0,0,1,1,1,0,0,0,0,1].
  std::vector<unsigned> discretize(double tau) const;

  /// Binary variant: 1 when at least one request arrives in the slice
  /// (the paper's "binary stream").
  std::vector<unsigned> discretize_binary(double tau) const;

 private:
  std::vector<double> timestamps_;
};

/// Rebuilds a timestamped trace from per-slice arrival counts (slice
/// length `tau`); arrivals within a slice are placed at its end, matching
/// the discretization convention above.
RequestTrace from_slices(const std::vector<unsigned>& arrivals, double tau);

}  // namespace dpm::trace
