#include "trace/request_trace.h"

#include <algorithm>
#include <cmath>

namespace dpm::trace {

RequestTrace::RequestTrace(std::vector<double> timestamps)
    : timestamps_(std::move(timestamps)) {
  for (std::size_t i = 0; i < timestamps_.size(); ++i) {
    if (timestamps_[i] < 0.0) {
      throw TraceError("RequestTrace: negative timestamp");
    }
    if (i > 0 && timestamps_[i] < timestamps_[i - 1]) {
      throw TraceError("RequestTrace: timestamps must be nondecreasing");
    }
  }
}

std::vector<unsigned> RequestTrace::discretize(double tau) const {
  if (tau <= 0.0) {
    throw TraceError("RequestTrace: time resolution must be positive");
  }
  if (timestamps_.empty()) return {};
  const std::size_t n =
      static_cast<std::size_t>(std::ceil(timestamps_.back() / tau)) + 1;
  std::vector<unsigned> slices(n, 0);
  for (const double t : timestamps_) {
    const auto i = static_cast<std::size_t>(std::ceil(t / tau));
    ++slices[i];
  }
  return slices;
}

std::vector<unsigned> RequestTrace::discretize_binary(double tau) const {
  std::vector<unsigned> slices = discretize(tau);
  for (unsigned& v : slices) v = v > 0 ? 1u : 0u;
  return slices;
}

RequestTrace from_slices(const std::vector<unsigned>& arrivals, double tau) {
  if (tau <= 0.0) {
    throw TraceError("from_slices: time resolution must be positive");
  }
  std::vector<double> ts;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    for (unsigned k = 0; k < arrivals[i]; ++k) {
      ts.push_back(static_cast<double>(i) * tau);
    }
  }
  return RequestTrace(std::move(ts));
}

}  // namespace dpm::trace
