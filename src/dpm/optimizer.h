// Policy optimization (paper Sec. IV and Appendix A).
//
// Casts PO as a linear program over discounted state-action frequencies
// x_{s,a}:
//
//   min  sum_{s,a} objective(s,a) x_{s,a}                         (LP2)
//   s.t. sum_a x_{j,a} - gamma sum_{s,a} P_a(s,j) x_{s,a} = p0_j  (balance)
//        sum_{s,a} metric_k(s,a) x_{s,a} <= bound_k / (1-gamma)   (LP3/LP4)
//        x >= 0
//
// and extracts the optimal randomized stationary Markov policy
// pi(s,a) = x_{s,a} / sum_a' x_{s,a'}  (Eq. 16).
//
// Bounds are specified as *per-slice averages* (Watts, queue lengths,
// loss probabilities) and scaled internally by the expected session
// length 1/(1-gamma), so callers work in the paper's plotted units.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dpm/metrics.h"
#include "dpm/policy.h"
#include "lp/solver.h"

namespace dpm {

/// One linear constraint: per-step expected value of `metric` <= bound.
struct OptimizationConstraint {
  StateActionMetric metric;
  double per_step_bound = 0.0;
  std::string name;
};

struct OptimizerConfig {
  /// Discount factor gamma in (0,1); expected session length is
  /// 1/(1-gamma) slices (paper Sec. IV: the stopping-time construction).
  double discount = 0.99999;
  /// Initial state distribution p0; empty means uniform.
  linalg::Vector initial_distribution;
  lp::Backend backend = lp::Backend::kRevisedSimplex;
};

struct OptimizationResult {
  bool feasible = false;
  lp::LpStatus lp_status = lp::LpStatus::kIterationLimit;
  std::size_t lp_iterations = 0;
  /// The optimal policy (set when feasible).
  std::optional<Policy> policy;
  /// Optimal per-step objective value ((1-gamma) * LP objective).
  double objective_per_step = 0.0;
  /// Achieved per-step values of the supplied constraints, in order.
  std::vector<double> constraint_per_step;
  /// Raw discounted state-action frequencies, layout x[s*A + a].
  linalg::Vector frequencies;
};

class PolicyOptimizer {
 public:
  PolicyOptimizer(const SystemModel& model, OptimizerConfig config);

  /// General form: minimize a metric subject to per-step constraints.
  ///
  /// Every solve runs under robust::SolveSupervisor: transient
  /// numerical trouble (singular refactorization, non-finite values, an
  /// IPM Cholesky breakdown) is healed by the escalation ladder with a
  /// bit-identical objective where possible; an outcome the ladder
  /// cannot determine surfaces as lp::LpError rather than masquerading
  /// as infeasibility.  See docs/robustness.md.
  OptimizationResult minimize(
      const StateActionMetric& objective,
      const std::vector<OptimizationConstraint>& constraints = {}) const;

  /// PO2 / LP4: minimum power under average-queue-length and (optional)
  /// request-loss constraints.
  OptimizationResult minimize_power(
      double max_avg_queue,
      std::optional<double> max_loss_rate = std::nullopt) const;

  /// PO1 / LP3: minimum performance penalty under a power constraint
  /// and (optional) request-loss constraint.
  OptimizationResult minimize_penalty(
      double max_avg_power,
      std::optional<double> max_loss_rate = std::nullopt) const;

  /// One point of a power/performance tradeoff exploration.
  struct ParetoPoint {
    double bound = 0.0;       // the swept constraint's per-step bound
    bool feasible = false;
    double objective = 0.0;   // optimal per-step objective
    std::size_t lp_iterations = 0;  // simplex pivots spent on this point
    std::optional<Policy> policy;
    /// Achieved per-step values of every constraint at this point: the
    /// fixed constraints in order, then the swept constraint last.
    std::vector<double> constraint_per_step;
    /// Raw discounted state-action frequencies (layout x[s*A + a]) —
    /// lets scenario code inspect structural properties of the optimum
    /// (e.g. Fig. 9a's "CPU2 never runs alone") without re-solving.
    linalg::Vector frequencies;
  };

  /// Sweeps `sweep_bounds` for the first constraint while holding
  /// `fixed_constraints`, minimizing `objective` at each point — the
  /// paper's tradeoff-curve exploration (Figs. 6, 8b, 9a, 9b).
  ///
  /// With the revised-simplex backend the LP is built once and each
  /// point after the first warm-starts from the previous optimal basis
  /// (only the swept constraint's rhs changes), so subsequent points
  /// cost a handful of boxed-dual-simplex pivots instead of a cold
  /// solve.  The warm-start contract also survives variable-bound
  /// changes (`LpProblem::set_upper_bound` between solves), so sweeps
  /// over bounded formulations stay warm too — see the warm-start
  /// section of src/lp/README.md.
  std::vector<ParetoPoint> sweep(
      const StateActionMetric& objective, const StateActionMetric& swept,
      std::string swept_name, const std::vector<double>& sweep_bounds,
      const std::vector<OptimizationConstraint>& fixed_constraints = {}) const;

  const SystemModel& model() const noexcept { return *model_; }
  const OptimizerConfig& config() const noexcept { return config_; }

  /// Builds the LP (exposed for white-box tests of the Appendix A
  /// formulation).
  lp::LpProblem build_lp(
      const StateActionMetric& objective,
      const std::vector<OptimizationConstraint>& constraints) const;

  /// Eq. 16 policy extraction; rows with zero visit frequency get a
  /// uniform decision (any choice is optimal for unreachable states).
  Policy extract_policy(const linalg::Vector& frequencies) const;

 private:
  const SystemModel* model_;
  OptimizerConfig config_;
};

}  // namespace dpm
