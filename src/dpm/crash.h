// Crash bases from MDP structure (the PR 8 cold-solve accelerator).
//
// A cold solve of LP2 starts from the all-logical basis and spends
// thousands of pivots walking toward a vertex whose shape is known in
// advance: at any basic optimal solution the balance rows are spanned
// by one occupation-measure column per state — exactly the pattern of a
// deterministic policy.  A few rounds of (modified) Howard policy
// iteration produce a near-optimal deterministic policy at O(nnz) cost,
// and the columns {x_{s, pi(s)}} form the sub-basis (I - gamma P_pi)^T
// over the balance rows — nonsingular for any policy and gamma < 1, and
// with nonnegative basic values (the policy's occupation measure).
// Seeding the revised simplex with that basis (slacks complete the
// metric rows) turns the cold solve into a short phase-2 polish; see
// RevisedSimplexOptions::crash_columns for the engine-side contract.
//
// The evaluation step is *modified* policy iteration: instead of the
// exact linear solve classic Howard uses (a factorization per round,
// unaffordable at crash time), v is improved by a fixed number of
// value-iteration sweeps v <- c_pi + gamma P_pi v.  The crash only
// needs a policy whose basis is near the optimum, not exact values.
#pragma once

#include <cstddef>
#include <vector>

#include "dpm/metrics.h"
#include "markov/sparse_chain.h"

namespace dpm {

struct CrashOptions {
  /// Greedy improvement rounds (Howard steps).
  std::size_t rounds = 3;
  /// Truncated-evaluation sweeps per round (applications of
  /// v <- c_pi + gamma P_pi v); total cost is O(nnz * rounds * sweeps).
  std::size_t sweeps = 40;
};

/// Greedy crash policy: one action per state, produced by
/// `options.rounds` modified-policy-iteration rounds minimizing the
/// total expected discounted `cost`.  Deterministic: ties keep the
/// lowest action index (first round) or the incumbent (later rounds).
std::vector<std::size_t> greedy_crash_actions(
    const markov::SparseControlledChain& chain, const StateActionMetric& cost,
    double gamma, const CrashOptions& options = {});

/// Maps crash actions onto the LP2 row layout (balance rows 0..n-1
/// first, metric rows after): row s is seeded with the occupation-
/// measure column s * na + actions[s]; the remaining `num_rows - n`
/// rows carry the no-seed sentinel (anything >= the column count) and
/// complete with their slack inside the engine.
std::vector<std::size_t> crash_columns_for_lp(
    const std::vector<std::size_t>& actions, std::size_t na,
    std::size_t num_rows);

}  // namespace dpm
