#include "dpm/evaluation.h"

#include <cmath>

#include "markov/occupancy.h"

namespace dpm {

PolicyEvaluation::PolicyEvaluation(const SystemModel& model,
                                   const Policy& policy, double gamma,
                                   const linalg::Vector& p0)
    : model_(&model), policy_(policy), gamma_(gamma) {
  if (policy.num_states() != model.num_states() ||
      policy.num_commands() != model.num_commands()) {
    throw ModelError("PolicyEvaluation: policy shape mismatch");
  }
  if (gamma <= 0.0 || gamma >= 1.0) {
    throw ModelError("PolicyEvaluation: gamma must be in (0,1)");
  }
  double mass = 0.0;
  for (double v : p0) {
    if (v < -1e-12) throw ModelError("PolicyEvaluation: negative p0 entry");
    mass += v;
  }
  if (std::abs(mass - 1.0) > 1e-7) {
    throw ModelError("PolicyEvaluation: p0 must sum to 1");
  }
  // Sparse path: mix the CSR rows under the policy (fused form) and
  // evaluate the occupancy by power accumulation — O(nnz * iters), no
  // dense n x n matrix, no factorization on large models.  Small
  // models take the exact LU route inside the evaluator.
  markov::MixedChainCsr mixed;
  model.chain().sparse().under_policy_csr(policy.matrix(), mixed);
  markov::OccupancyWorkspace ws;
  occupancy_ = markov::discounted_occupancy_power(mixed, p0, gamma, ws);
}

double PolicyEvaluation::total(const StateActionMetric& metric) const {
  double acc = 0.0;
  for (std::size_t s = 0; s < model_->num_states(); ++s) {
    const double u = occupancy_[s];
    if (u == 0.0) continue;
    double per_state = 0.0;
    for (std::size_t a = 0; a < model_->num_commands(); ++a) {
      const double p = policy_.probability(s, a);
      if (p > 0.0) per_state += p * metric(s, a);
    }
    acc += u * per_state;
  }
  return acc;
}

double PolicyEvaluation::per_step(const StateActionMetric& metric) const {
  return (1.0 - gamma_) * total(metric);
}

linalg::Vector PolicyEvaluation::state_action_frequencies() const {
  const std::size_t n = model_->num_states();
  const std::size_t na = model_->num_commands();
  linalg::Vector x(n * na, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t a = 0; a < na; ++a) {
      x[s * na + a] = occupancy_[s] * policy_.probability(s, a);
    }
  }
  return x;
}

}  // namespace dpm
