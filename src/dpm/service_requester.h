// Service requester — the environment (paper Def. 3.2).
//
// An autonomous Markov chain; state r emits requests(r) service requests
// per time slice.  The SR is not controllable: it models workload the
// system cannot influence.
#pragma once

#include <string>
#include <vector>

#include "dpm/command_set.h"
#include "markov/markov_chain.h"

namespace dpm {

class ServiceRequester {
 public:
  /// `transitions` must be row-stochastic; `requests_per_state[r]` is the
  /// (nonnegative) number of requests generated per slice in state r.
  ServiceRequester(linalg::Matrix transitions,
                   std::vector<unsigned> requests_per_state,
                   std::vector<std::string> state_names = {});

  std::size_t num_states() const noexcept { return chain_.num_states(); }
  const markov::MarkovChain& chain() const noexcept { return chain_; }
  unsigned requests(std::size_t r) const { return requests_.at(r); }
  unsigned max_requests_per_slice() const noexcept { return max_requests_; }
  const std::string& state_name(std::size_t r) const { return names_.at(r); }

  /// The long-run average number of requests per slice (stationary
  /// distribution weighted), i.e. the offered load.
  double mean_arrival_rate() const;

  /// Two-state convenience constructor matching paper Example 3.2: state
  /// 0 emits nothing, state 1 emits one request;
  /// p01 = Prob[0 -> 1], p10 = Prob[1 -> 0].
  static ServiceRequester two_state(double p01, double p10);

 private:
  markov::MarkovChain chain_;
  std::vector<unsigned> requests_;
  std::vector<std::string> names_;
  unsigned max_requests_ = 0;
};

}  // namespace dpm
