#include "dpm/command_set.h"

#include <algorithm>

namespace dpm {

CommandSet::CommandSet(std::vector<std::string> names)
    : names_(std::move(names)) {
  if (names_.empty()) {
    throw ModelError("CommandSet: at least one command is required");
  }
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i].empty()) {
      throw ModelError("CommandSet: command names must be non-empty");
    }
    for (std::size_t j = i + 1; j < names_.size(); ++j) {
      if (names_[i] == names_[j]) {
        throw ModelError("CommandSet: duplicate command name '" + names_[i] +
                         "'");
      }
    }
  }
}

std::size_t CommandSet::index(const std::string& name) const {
  const auto it = std::find(names_.begin(), names_.end(), name);
  if (it == names_.end()) {
    throw ModelError("CommandSet: unknown command '" + name + "'");
  }
  return static_cast<std::size_t>(it - names_.begin());
}

bool CommandSet::contains(const std::string& name) const noexcept {
  return std::find(names_.begin(), names_.end(), name) != names_.end();
}

}  // namespace dpm
