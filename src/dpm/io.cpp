#include "dpm/io.h"

#include <iomanip>
#include <ostream>

namespace dpm::io {

void print_provider(std::ostream& os, const ServiceProvider& sp) {
  os << "service provider: " << sp.num_states() << " states, "
     << sp.commands().size() << " commands\n";
  for (std::size_t a = 0; a < sp.commands().size(); ++a) {
    os << "  P[" << sp.commands().name(a) << "]:\n";
    for (std::size_t i = 0; i < sp.num_states(); ++i) {
      os << "    " << std::setw(14) << std::left << sp.state_name(i)
         << std::right;
      for (std::size_t j = 0; j < sp.num_states(); ++j) {
        os << " " << std::setw(7) << std::fixed << std::setprecision(3)
           << sp.chain().transition(i, j, a);
      }
      os << "\n";
    }
  }
  os << "  state (rate | power per command):\n";
  for (std::size_t s = 0; s < sp.num_states(); ++s) {
    os << "    " << std::setw(14) << std::left << sp.state_name(s)
       << std::right;
    for (std::size_t a = 0; a < sp.commands().size(); ++a) {
      os << "  " << std::setprecision(2) << sp.service_rate(s, a) << "|"
         << sp.power(s, a) << "W";
    }
    os << "\n";
  }
}

void print_requester(std::ostream& os, const ServiceRequester& sr) {
  os << "service requester: " << sr.num_states() << " states\n";
  for (std::size_t i = 0; i < sr.num_states(); ++i) {
    os << "  " << std::setw(10) << std::left << sr.state_name(i)
       << std::right << " emits " << sr.requests(i) << " |";
    for (std::size_t j = 0; j < sr.num_states(); ++j) {
      os << " " << std::setw(7) << std::fixed << std::setprecision(3)
         << sr.chain().transition(i, j);
    }
    os << "\n";
  }
}

void print_policy(std::ostream& os, const SystemModel& model,
                  const Policy& policy, double hide_below) {
  const CommandSet& commands = model.provider().commands();
  os << "policy (" << (policy.is_deterministic(1e-9) ? "deterministic"
                                                     : "randomized")
     << "):\n";
  for (std::size_t s = 0; s < model.num_states(); ++s) {
    os << "  " << std::setw(26) << std::left << model.state_label(s)
       << std::right;
    for (std::size_t a = 0; a < policy.num_commands(); ++a) {
      const double p = policy.probability(s, a);
      if (p < hide_below) continue;
      os << "  " << commands.name(a) << "=" << std::fixed
         << std::setprecision(4) << p;
    }
    os << "\n";
  }
}

void print_result(std::ostream& os, const SystemModel& model,
                  const OptimizationResult& result) {
  if (!result.feasible) {
    os << "optimization: infeasible (" << lp::to_string(result.lp_status)
       << ")\n";
    return;
  }
  os << "optimization: optimal per-step objective = " << std::fixed
     << std::setprecision(5) << result.objective_per_step << " ("
     << result.lp_iterations << " LP iterations)\n";
  for (std::size_t k = 0; k < result.constraint_per_step.size(); ++k) {
    os << "  constraint[" << k
       << "] achieved = " << result.constraint_per_step[k] << "\n";
  }
  if (result.policy) {
    print_policy(os, model, *result.policy, /*hide_below=*/1e-6);
  }
}

}  // namespace dpm::io
