// Exact discounted policy evaluation.
//
// For a fixed stationary Markov policy pi, the discounted state
// occupancy u = p0 (I - gamma P_pi)^{-1} gives the expected discounted
// number of visits to each state before the geometric stopping time
// (paper Sec. IV).  Any per-slice metric m(s,a) then evaluates to
//   total = sum_s u_s sum_a pi(s,a) m(s,a),
// and the per-slice average over the session is (1-gamma) * total
// (the expected session length is 1/(1-gamma)).
//
// This is the closed-form counterpart of the tool's "simulation engine
// consistency check" (Fig. 7) and the ground truth the tests compare
// both the LP solutions and the Monte Carlo simulator against.
#pragma once

#include "dpm/metrics.h"
#include "dpm/policy.h"
#include "dpm/system_model.h"

namespace dpm {

class PolicyEvaluation {
 public:
  /// Computes the discounted occupancy for `policy` on `model` starting
  /// from `p0`.  gamma in (0,1); p0 must be a distribution over model
  /// states.
  PolicyEvaluation(const SystemModel& model, const Policy& policy,
                   double gamma, const linalg::Vector& p0);

  /// Expected total discounted cost of a metric.
  double total(const StateActionMetric& metric) const;

  /// Per-slice (session-average) cost: (1 - gamma) * total.
  double per_step(const StateActionMetric& metric) const;

  /// Discounted state occupancy u (sums to 1/(1-gamma)).
  const linalg::Vector& occupancy() const noexcept { return occupancy_; }

  /// Discounted state-action frequencies x_{s,a} = u_s * pi(s,a) —
  /// directly comparable to the LP unknowns of Appendix A.
  linalg::Vector state_action_frequencies() const;

  double gamma() const noexcept { return gamma_; }

 private:
  const SystemModel* model_;
  Policy policy_;
  double gamma_;
  linalg::Vector occupancy_;
};

}  // namespace dpm
