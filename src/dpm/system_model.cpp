#include "dpm/system_model.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dpm {

std::vector<std::pair<std::size_t, double>> queue_transition_distribution(
    std::size_t q, unsigned arrivals, double service_rate,
    std::size_t capacity) {
  if (q > capacity) {
    throw ModelError("queue_transition_distribution: q exceeds capacity");
  }
  if (service_rate < 0.0 || service_rate > 1.0) {
    throw ModelError("queue_transition_distribution: bad service rate");
  }
  const std::size_t backlog = q + arrivals;  // work present during the slice
  const auto clamp = [capacity](std::size_t v) {
    return std::min(v, capacity);
  };
  // Nothing to serve: the queue can only take the (clamped) arrivals.
  if (backlog == 0 || service_rate == 0.0) {
    return {{clamp(backlog), 1.0}};
  }
  const std::size_t q_served = clamp(backlog - 1);
  const std::size_t q_unserved = clamp(backlog);
  if (q_served == q_unserved) {
    // Overflow regime (Eq. 3 corner case): even a completed service
    // leaves the queue saturated.
    return {{q_served, 1.0}};
  }
  return {{q_served, service_rate}, {q_unserved, 1.0 - service_rate}};
}

SystemModel SystemModel::compose(ServiceProvider sp, ServiceRequester sr,
                                 std::size_t queue_capacity,
                                 SpTransitionOverride override_sp) {
  const std::size_t n_sp = sp.num_states();
  const std::size_t n_sr = sr.num_states();
  const std::size_t n_q = queue_capacity + 1;
  const std::size_t n = n_sp * n_sr * n_q;
  const std::size_t n_a = sp.commands().size();

  const auto idx = [n_sr, n_q](std::size_t isp, std::size_t isr,
                               std::size_t iq) {
    return (isp * n_sr + isr) * n_q + iq;
  };

  // Assemble sparse transition rows directly: each (state, command) pair
  // reaches only |supp(SR row)| x |supp(SP row)| x (<= 2 queue outcomes)
  // successors, so composition is O(nnz) and never materializes an
  // n x n matrix.  Duplicate successors (distinct paths to one state)
  // are summed by the SparseControlledChain constructor.
  std::vector<std::vector<markov::TransitionRow>> rows(
      n_a, std::vector<markov::TransitionRow>(n));
  for (std::size_t a = 0; a < n_a; ++a) {
    for (std::size_t isp = 0; isp < n_sp; ++isp) {
      for (std::size_t isr = 0; isr < n_sr; ++isr) {
        for (std::size_t iq = 0; iq < n_q; ++iq) {
          markov::TransitionRow& row = rows[a][idx(isp, isr, iq)];
          const double rate = sp.service_rate(isp, a);
          for (std::size_t jsr = 0; jsr < n_sr; ++jsr) {
            const double p_sr = sr.chain().transition(isr, jsr);
            if (p_sr == 0.0) continue;
            const unsigned arrivals = sr.requests(jsr);
            const auto q_dist = queue_transition_distribution(
                iq, arrivals, rate, queue_capacity);
            for (std::size_t jsp = 0; jsp < n_sp; ++jsp) {
              const double p_sp =
                  override_sp ? override_sp(isp, jsp, a, jsr)
                              : sp.chain().transition(isp, jsp, a);
              if (p_sp == 0.0) continue;
              for (const auto& [jq, p_q] : q_dist) {
                row.emplace_back(idx(jsp, jsr, jq), p_sr * p_sp * p_q);
              }
            }
          }
        }
      }
    }
  }
  // SparseControlledChain validates row-stochasticity of the composed
  // rows, which also catches non-stochastic overrides.
  markov::ControlledMarkovChain chain(
      markov::SparseControlledChain(n, std::move(rows), 1e-7));
  return SystemModel(std::move(sp), std::move(sr), queue_capacity,
                     std::move(chain), std::move(override_sp));
}

SystemModel::SystemModel(ServiceProvider sp, ServiceRequester sr,
                         std::size_t capacity,
                         markov::ControlledMarkovChain chain,
                         SpTransitionOverride override_sp)
    : sp_(std::move(sp)),
      sr_(std::move(sr)),
      capacity_(capacity),
      chain_(std::move(chain)),
      override_(std::move(override_sp)) {}

double SystemModel::sp_transition(std::size_t sp_from, std::size_t sp_to,
                                  std::size_t command,
                                  std::size_t sr_to) const {
  if (override_) return override_(sp_from, sp_to, command, sr_to);
  return sp_.chain().transition(sp_from, sp_to, command);
}

std::size_t SystemModel::index_of(const SystemState& s) const {
  if (s.sp >= sp_.num_states() || s.sr >= sr_.num_states() ||
      s.q > capacity_) {
    throw ModelError("SystemModel: structured state out of range");
  }
  return (s.sp * sr_.num_states() + s.sr) * (capacity_ + 1) + s.q;
}

SystemState SystemModel::decompose(std::size_t index) const {
  if (index >= num_states()) {
    throw ModelError("SystemModel: state index out of range");
  }
  const std::size_t n_q = capacity_ + 1;
  SystemState s;
  s.q = index % n_q;
  index /= n_q;
  s.sr = index % sr_.num_states();
  s.sp = index / sr_.num_states();
  return s;
}

std::string SystemModel::state_label(std::size_t index) const {
  const SystemState s = decompose(index);
  std::ostringstream os;
  os << "(" << sp_.state_name(s.sp) << "," << sr_.state_name(s.sr) << ",q="
     << s.q << ")";
  return os.str();
}

double SystemModel::power(std::size_t state, std::size_t command) const {
  return sp_.power(decompose(state).sp, command);
}

double SystemModel::queue_length(std::size_t state) const {
  return static_cast<double>(decompose(state).q);
}

bool SystemModel::is_loss_state(std::size_t state) const {
  const SystemState s = decompose(state);
  if (sr_.requests(s.sr) == 0) return false;
  if (capacity_ == 0) {
    // No buffering: a request arriving while the provider sleeps cannot
    // be serviced and is lost.
    return sp_.is_sleep_state(s.sp);
  }
  return s.q == capacity_;
}

double SystemModel::service_rate(std::size_t state,
                                 std::size_t command) const {
  return sp_.service_rate(decompose(state).sp, command);
}

linalg::Vector SystemModel::point_distribution(const SystemState& s) const {
  linalg::Vector p0(num_states(), 0.0);
  p0[index_of(s)] = 1.0;
  return p0;
}

linalg::Vector SystemModel::uniform_distribution() const {
  return linalg::Vector(num_states(), 1.0 / static_cast<double>(num_states()));
}

void SystemModel::hash_into(sim::Fnv1a& h) const {
  h.add_string("SystemModel");
  chain_->sparse().hash_into(h);
  h.add_size(capacity_);
  const std::size_t n = num_states();
  const std::size_t na = num_commands();
  for (std::size_t s = 0; s < n; ++s) {
    h.add_double(queue_length(s));
    h.add_byte(is_loss_state(s) ? 1 : 0);
    for (std::size_t a = 0; a < na; ++a) {
      h.add_double(power(s, a));
      h.add_double(service_rate(s, a));
    }
  }
}

}  // namespace dpm
