#include "dpm/policy.h"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace dpm {

Policy::Policy(linalg::Matrix decisions) : decisions_(std::move(decisions)) {
  for (std::size_t s = 0; s < decisions_.rows(); ++s) {
    double row_sum = 0.0;
    for (std::size_t a = 0; a < decisions_.cols(); ++a) {
      const double v = decisions_(s, a);
      if (v < -1e-9 || std::isnan(v)) {
        throw ModelError("Policy: decision (" + std::to_string(s) + "," +
                         std::to_string(a) + ") is not a probability");
      }
      row_sum += v;
    }
    if (std::abs(row_sum - 1.0) > 1e-7) {
      throw ModelError("Policy: decision row " + std::to_string(s) +
                       " sums to " + std::to_string(row_sum));
    }
  }
}

Policy Policy::randomized(linalg::Matrix decisions) {
  return Policy(std::move(decisions));
}

Policy Policy::deterministic(const std::vector<std::size_t>& action_per_state,
                             std::size_t num_commands) {
  linalg::Matrix d(action_per_state.size(), num_commands);
  for (std::size_t s = 0; s < action_per_state.size(); ++s) {
    if (action_per_state[s] >= num_commands) {
      throw ModelError("Policy: command index out of range in state " +
                       std::to_string(s));
    }
    d(s, action_per_state[s]) = 1.0;
  }
  return Policy(std::move(d));
}

Policy Policy::constant(std::size_t num_states, std::size_t num_commands,
                        std::size_t command) {
  return deterministic(std::vector<std::size_t>(num_states, command),
                       num_commands);
}

bool Policy::is_deterministic(double tol) const {
  for (std::size_t s = 0; s < num_states(); ++s) {
    double max_p = 0.0;
    for (std::size_t a = 0; a < num_commands(); ++a) {
      max_p = std::max(max_p, decisions_(s, a));
    }
    if (max_p < 1.0 - tol) return false;
  }
  return true;
}

std::size_t Policy::command_for(std::size_t state) const {
  std::size_t best = 0;
  double best_p = -1.0;
  for (std::size_t a = 0; a < num_commands(); ++a) {
    if (decisions_(state, a) > best_p) {
      best_p = decisions_(state, a);
      best = a;
    }
  }
  return best;
}

std::string Policy::to_string(const CommandSet* commands) const {
  std::ostringstream os;
  os << "state";
  for (std::size_t a = 0; a < num_commands(); ++a) {
    if (commands != nullptr && commands->size() == num_commands()) {
      os << std::setw(12) << commands->name(a);
    } else {
      os << std::setw(12) << ("a" + std::to_string(a));
    }
  }
  os << "\n";
  for (std::size_t s = 0; s < num_states(); ++s) {
    os << std::setw(5) << s;
    for (std::size_t a = 0; a < num_commands(); ++a) {
      os << std::setw(12) << std::fixed << std::setprecision(4)
         << decisions_(s, a);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace dpm
