#include "dpm/service_requester.h"

#include <algorithm>

namespace dpm {

ServiceRequester::ServiceRequester(linalg::Matrix transitions,
                                   std::vector<unsigned> requests_per_state,
                                   std::vector<std::string> state_names)
    : chain_(std::move(transitions)), requests_(std::move(requests_per_state)) {
  if (requests_.size() != chain_.num_states()) {
    throw ModelError("ServiceRequester: requests vector size mismatch");
  }
  if (state_names.empty()) {
    for (std::size_t r = 0; r < requests_.size(); ++r) {
      state_names.push_back("sr" + std::to_string(r));
    }
  }
  if (state_names.size() != requests_.size()) {
    throw ModelError("ServiceRequester: state names size mismatch");
  }
  names_ = std::move(state_names);
  max_requests_ = *std::max_element(requests_.begin(), requests_.end());
}

double ServiceRequester::mean_arrival_rate() const {
  const linalg::Vector pi = chain_.stationary_distribution();
  double rate = 0.0;
  for (std::size_t r = 0; r < requests_.size(); ++r) {
    rate += pi[r] * requests_[r];
  }
  return rate;
}

ServiceRequester ServiceRequester::two_state(double p01, double p10) {
  linalg::Matrix p{{1.0 - p01, p01}, {p10, 1.0 - p10}};
  return ServiceRequester(std::move(p), {0u, 1u}, {"idle", "request"});
}

}  // namespace dpm
