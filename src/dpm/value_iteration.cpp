#include "dpm/value_iteration.h"

#include <cmath>
#include <limits>

namespace dpm {

ValueIterationResult value_iteration(const SystemModel& model,
                                     const StateActionMetric& metric,
                                     double gamma,
                                     const ValueIterationOptions& options) {
  if (gamma <= 0.0 || gamma >= 1.0) {
    throw ModelError("value_iteration: gamma must be in (0,1)");
  }
  const std::size_t n = model.num_states();
  const std::size_t na = model.num_commands();

  // Cache per-(s,a) immediate costs once; metric evaluation may be an
  // arbitrary user callable.
  linalg::Matrix cost(n, na);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t a = 0; a < na; ++a) cost(s, a) = metric(s, a);
  }

  linalg::Vector v(n, 0.0), v_next(n, 0.0);
  std::vector<std::size_t> best_action(n, 0);
  std::size_t iter = 0;
  bool converged = false;
  for (; iter < options.max_iterations; ++iter) {
    double delta = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t arg = 0;
      for (std::size_t a = 0; a < na; ++a) {
        double q = cost(s, a);
        for (const auto& [t, w] : model.chain().row(a, s)) {
          q += gamma * w * v[t];
        }
        if (q < best) {
          best = q;
          arg = a;
        }
      }
      v_next[s] = best;
      best_action[s] = arg;
      delta = std::max(delta, std::abs(v_next[s] - v[s]));
    }
    v.swap(v_next);
    // Standard stopping rule: the sup-norm error of v is bounded by
    // delta * gamma / (1 - gamma).
    if (delta * gamma / (1.0 - gamma) < options.tolerance) {
      converged = true;
      ++iter;
      break;
    }
  }
  return ValueIterationResult{
      Policy::deterministic(best_action, na), std::move(v), iter, converged};
}

}  // namespace dpm
