// Human-readable rendering of models, policies, and optimization
// results — the reporting layer shared by the examples and benches.
#pragma once

#include <iosfwd>

#include "dpm/optimizer.h"
#include "dpm/policy.h"
#include "dpm/system_model.h"

namespace dpm::io {

/// SP description: states, per-command transition matrices, service
/// rates, and powers.
void print_provider(std::ostream& os, const ServiceProvider& sp);

/// SR description: transition matrix and per-state request counts.
void print_requester(std::ostream& os, const ServiceRequester& sr);

/// Policy table with system-state labels and command names.
void print_policy(std::ostream& os, const SystemModel& model,
                  const Policy& policy, double hide_below = 0.0);

/// One-paragraph summary of an optimization outcome.
void print_result(std::ostream& os, const SystemModel& model,
                  const OptimizationResult& result);

}  // namespace dpm::io
