#include "dpm/average_optimizer.h"

namespace dpm {

AverageCostOptimizer::AverageCostOptimizer(const SystemModel& model,
                                           lp::Backend backend)
    : model_(&model), backend_(backend) {}

lp::LpProblem AverageCostOptimizer::build_lp(
    const StateActionMetric& objective,
    const std::vector<OptimizationConstraint>& constraints) const {
  const std::size_t n = model_->num_states();
  const std::size_t na = model_->num_commands();

  lp::LpProblem problem;
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t a = 0; a < na; ++a) {
      problem.add_variable(objective(s, a),
                           "x(" + std::to_string(s) + "," +
                               std::to_string(a) + ")");
    }
  }

  // Stationarity: outflow of j equals inflow of j.  (One of these rows
  // is redundant given the normalization; the solvers tolerate it.)
  for (std::size_t j = 0; j < n; ++j) {
    lp::Constraint c;
    c.sense = lp::Sense::kEq;
    c.rhs = 0.0;
    c.name = "stationarity(" + std::to_string(j) + ")";
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t a = 0; a < na; ++a) {
        double coeff = -model_->chain().transition(s, j, a);
        if (s == j) coeff += 1.0;
        if (coeff != 0.0) c.terms.emplace_back(s * na + a, coeff);
      }
    }
    problem.add_constraint(std::move(c));
  }

  // Normalization: x is a distribution.
  {
    lp::Constraint c;
    c.sense = lp::Sense::kEq;
    c.rhs = 1.0;
    c.name = "normalization";
    for (std::size_t k = 0; k < n * na; ++k) c.terms.emplace_back(k, 1.0);
    problem.add_constraint(std::move(c));
  }

  for (const auto& oc : constraints) {
    lp::Constraint c;
    c.sense = lp::Sense::kLe;
    c.rhs = oc.per_step_bound;  // already a per-step average
    c.name = oc.name;
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t a = 0; a < na; ++a) {
        const double m = oc.metric(s, a);
        if (m != 0.0) c.terms.emplace_back(s * na + a, m);
      }
    }
    problem.add_constraint(std::move(c));
  }
  return problem;
}

OptimizationResult AverageCostOptimizer::minimize(
    const StateActionMetric& objective,
    const std::vector<OptimizationConstraint>& constraints) const {
  const lp::LpProblem problem = build_lp(objective, constraints);
  const lp::LpSolution lp_sol = lp::solve(problem, backend_);

  OptimizationResult result;
  result.lp_status = lp_sol.status;
  result.lp_iterations = lp_sol.iterations;
  if (lp_sol.status != lp::LpStatus::kOptimal) return result;

  result.feasible = true;
  result.frequencies = lp_sol.x;
  result.objective_per_step = lp_sol.objective;

  // Policy extraction is shared with the discounted optimizer (Eq. 16
  // applies verbatim to stationary distributions) — but with one
  // average-cost-specific addition: the LP only pins down behaviour on
  // the support of the optimal stationary distribution.  States outside
  // it must be *steered into* the support, or a run started there (or
  // in a transient state) may settle in a worse recurrent class.
  // Backward BFS: give each off-support state a command with positive
  // one-step probability of moving closer to the support.
  OptimizerConfig dummy;
  dummy.discount = 0.5;  // unused by extract_policy
  const PolicyOptimizer extractor(*model_, dummy);
  Policy extracted = extractor.extract_policy(lp_sol.x);
  {
    const std::size_t n = model_->num_states();
    const std::size_t na = model_->num_commands();
    std::vector<bool> steered(n, false);
    for (std::size_t s = 0; s < n; ++s) {
      double mass = 0.0;
      for (std::size_t a = 0; a < na; ++a) mass += lp_sol.x[s * na + a];
      steered[s] = mass > 1e-12;
    }
    linalg::Matrix decisions = extracted.matrix();
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t s = 0; s < n; ++s) {
        if (steered[s]) continue;
        for (std::size_t a = 0; a < na; ++a) {
          double into = 0.0;
          for (std::size_t t = 0; t < n; ++t) {
            if (steered[t]) into += model_->chain().transition(s, t, a);
          }
          if (into > 0.0) {
            for (std::size_t b = 0; b < na; ++b) decisions(s, b) = 0.0;
            decisions(s, a) = 1.0;
            steered[s] = true;
            changed = true;
            break;
          }
        }
      }
    }
    extracted = Policy::randomized(std::move(decisions));
  }
  result.policy = std::move(extracted);

  const std::size_t n = model_->num_states();
  const std::size_t na = model_->num_commands();
  result.constraint_per_step.reserve(constraints.size());
  for (const auto& oc : constraints) {
    double total = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t a = 0; a < na; ++a) {
        const double x = lp_sol.x[s * na + a];
        if (x != 0.0) total += oc.metric(s, a) * x;
      }
    }
    result.constraint_per_step.push_back(total);
  }
  return result;
}

bool AverageCostOptimizer::support_is_single_class(
    const OptimizationResult& result) const {
  if (!result.feasible || !result.policy) return false;
  const std::size_t n = model_->num_states();
  const std::size_t na = model_->num_commands();
  std::vector<std::size_t> support;
  for (std::size_t s = 0; s < n; ++s) {
    double mass = 0.0;
    for (std::size_t a = 0; a < na; ++a) {
      mass += result.frequencies[s * na + a];
    }
    if (mass > 1e-12) support.push_back(s);
  }
  if (support.size() <= 1) return true;

  // Strong connectivity of the support under the mixed chain: BFS both
  // ways from support.front(), restricted to support states, over the
  // sparse mixed rows (no dense n x n matrix).
  std::vector<markov::TransitionRow> mixed;
  model_->chain().sparse().under_policy_rows(result.policy->matrix(), mixed);
  std::vector<char> in_support(n, 0);
  for (const std::size_t s : support) in_support[s] = 1;
  std::vector<std::vector<std::size_t>> fwd(n), rev(n);
  for (const std::size_t s : support) {
    for (const auto& [t, w] : mixed[s]) {
      if (w > 0.0 && in_support[t]) {
        fwd[s].push_back(t);
        rev[t].push_back(s);
      }
    }
  }
  const auto reaches_all = [&](const std::vector<std::vector<std::size_t>>&
                                   adj) {
    std::vector<bool> seen(n, false);
    std::vector<std::size_t> frontier{support.front()};
    seen[support.front()] = true;
    while (!frontier.empty()) {
      const std::size_t s = frontier.back();
      frontier.pop_back();
      for (const std::size_t t : adj[s]) {
        if (!seen[t]) {
          seen[t] = true;
          frontier.push_back(t);
        }
      }
    }
    for (const std::size_t s : support) {
      if (!seen[s]) return false;
    }
    return true;
  };
  return reaches_all(fwd) && reaches_all(rev);
}

OptimizationResult AverageCostOptimizer::minimize_power(
    double max_avg_queue, std::optional<double> max_loss_rate) const {
  std::vector<OptimizationConstraint> constraints;
  constraints.push_back(
      {metrics::queue_length(*model_), max_avg_queue, "performance"});
  if (max_loss_rate) {
    constraints.push_back(
        {metrics::request_loss(*model_), *max_loss_rate, "request-loss"});
  }
  return minimize(metrics::power(*model_), constraints);
}

}  // namespace dpm
