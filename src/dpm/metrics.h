// Cost metrics over (state, command) pairs (paper Sec. III-B).
//
// Every optimizer objective/constraint and every exact-evaluation query
// is a StateActionMetric; the helpers below build the paper's standard
// ones from a SystemModel.
#pragma once

#include <functional>

#include "dpm/system_model.h"

namespace dpm {

/// m(s, a): the per-slice cost incurred when the system is in state s
/// and command a is issued.
using StateActionMetric =
    std::function<double(std::size_t state, std::size_t command)>;

namespace metrics {

/// Expected power consumption c(s, a) in Watts (Def. 3.1).
inline StateActionMetric power(const SystemModel& model) {
  return [&model](std::size_t s, std::size_t a) { return model.power(s, a); };
}

/// Performance penalty d(s) = number of enqueued requests (Sec. III-B:
/// "the simplest way to define d is to set it equal to the number of
/// requests in the queue").
inline StateActionMetric queue_length(const SystemModel& model) {
  return [&model](std::size_t s, std::size_t) {
    return model.queue_length(s);
  };
}

/// Request-loss indicator: 1 in states where the SR issues requests and
/// the queue is full (Appendix A's additional constraint).
inline StateActionMetric request_loss(const SystemModel& model) {
  return [&model](std::size_t s, std::size_t) {
    return model.is_loss_state(s) ? 1.0 : 0.0;
  };
}

/// CPU-style penalty (Sec. VI-C): 1 when the SR is active while the SP
/// sleeps, 0 otherwise.
inline StateActionMetric active_request_while_sleeping(
    const SystemModel& model) {
  return [&model](std::size_t s, std::size_t) {
    const SystemState st = model.decompose(s);
    return (model.requester().requests(st.sr) > 0 &&
            model.provider().is_sleep_state(st.sp))
               ? 1.0
               : 0.0;
  };
}

/// Throughput: the service rate offered (used by the web-server case,
/// where performance is expected throughput rather than queue length).
inline StateActionMetric throughput(const SystemModel& model) {
  return [&model](std::size_t s, std::size_t a) {
    return model.service_rate(s, a);
  };
}

/// Constant metric (useful in tests).
inline StateActionMetric constant(double value) {
  return [value](std::size_t, std::size_t) { return value; };
}

}  // namespace metrics
}  // namespace dpm
