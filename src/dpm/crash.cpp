#include "dpm/crash.h"

#include <limits>
#include <utility>

#include "linalg/matrix.h"

namespace dpm {

std::vector<std::size_t> greedy_crash_actions(
    const markov::SparseControlledChain& chain, const StateActionMetric& cost,
    double gamma, const CrashOptions& options) {
  const std::size_t n = chain.num_states();
  const std::size_t na = chain.num_commands();
  if (gamma <= 0.0 || gamma >= 1.0) {
    throw ModelError("greedy_crash_actions: gamma must be in (0,1)");
  }

  // Cache the per-pair costs once: the improvement scan reads each
  // c(s, a) every round, and metric callbacks may be arbitrarily
  // expensive.
  linalg::Matrix c(n, na);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t a = 0; a < na; ++a) c(s, a) = cost(s, a);
  }

  // Round 0 greedy at v = 0: pure cost, lowest action wins ties.
  std::vector<std::size_t> actions(n, 0);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t a = 1; a < na; ++a) {
      if (c(s, a) < c(s, actions[s])) actions[s] = a;
    }
  }

  linalg::Vector v(n, 0.0);
  linalg::Vector vnext(n, 0.0);
  for (std::size_t round = 0; round < options.rounds; ++round) {
    // Truncated evaluation: Jacobi value sweeps under the incumbent
    // policy.  Each sweep is one pass over the policy's CSR rows.
    for (std::size_t sweep = 0; sweep < options.sweeps; ++sweep) {
      for (std::size_t s = 0; s < n; ++s) {
        double acc = 0.0;
        for (const auto& [j, p] : chain.row(actions[s], s)) acc += p * v[j];
        vnext[s] = c(s, actions[s]) + gamma * acc;
      }
      std::swap(v, vnext);
    }
    // Greedy improvement against the evaluated values; the incumbent
    // keeps ties so a stabilized policy stays put.
    bool changed = false;
    for (std::size_t s = 0; s < n; ++s) {
      std::size_t best = actions[s];
      double best_q = std::numeric_limits<double>::infinity();
      {
        double acc = 0.0;
        for (const auto& [j, p] : chain.row(best, s)) acc += p * v[j];
        best_q = c(s, best) + gamma * acc;
      }
      for (std::size_t a = 0; a < na; ++a) {
        if (a == actions[s]) continue;
        double acc = 0.0;
        for (const auto& [j, p] : chain.row(a, s)) acc += p * v[j];
        const double q = c(s, a) + gamma * acc;
        if (q < best_q - 1e-12) {
          best_q = q;
          best = a;
        }
      }
      if (best != actions[s]) {
        actions[s] = best;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return actions;
}

std::vector<std::size_t> crash_columns_for_lp(
    const std::vector<std::size_t>& actions, std::size_t na,
    std::size_t num_rows) {
  std::vector<std::size_t> cols(
      num_rows, std::numeric_limits<std::size_t>::max());
  const std::size_t n = actions.size() < num_rows ? actions.size() : num_rows;
  for (std::size_t s = 0; s < n; ++s) cols[s] = s * na + actions[s];
  return cols;
}

}  // namespace dpm
