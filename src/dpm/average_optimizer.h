// Average-cost (infinite-horizon) policy optimization.
//
// The paper first states PO over the long-run average (Eq. 7) and then
// moves to the discounted stopping-time formulation (Eq. 9) for
// computability.  For unichain models the average-cost problem is
// itself a small LP over the stationary state-action distribution:
//
//   min  sum m(s,a) x_{s,a}
//   s.t. sum_a x_{j,a} - sum_{s,a} P_a(s,j) x_{s,a} = 0   (stationarity)
//        sum_{s,a} x_{s,a} = 1                            (distribution)
//        sum metric_k(s,a) x_{s,a} <= bound_k
//        x >= 0
//
// This optimizer complements PolicyOptimizer: it has no horizon
// parameter and no end-of-session effects (see EXPERIMENTS.md on
// Fig. 14a), and its optimum is the gamma -> 1 limit of the discounted
// one on ergodic models — a relationship the test suite checks.
#pragma once

#include "dpm/optimizer.h"

namespace dpm {

class AverageCostOptimizer {
 public:
  explicit AverageCostOptimizer(
      const SystemModel& model,
      lp::Backend backend = lp::Backend::kRevisedSimplex);

  /// Minimizes the long-run average of `objective` under per-step
  /// constraints.  Fields of OptimizationResult are per-step averages;
  /// `frequencies` holds the stationary state-action distribution
  /// (sums to 1).
  OptimizationResult minimize(
      const StateActionMetric& objective,
      const std::vector<OptimizationConstraint>& constraints = {}) const;

  /// PO2 convenience (min average power under queue/loss bounds).
  OptimizationResult minimize_power(
      double max_avg_queue,
      std::optional<double> max_loss_rate = std::nullopt) const;

  /// Exposed for white-box tests.
  lp::LpProblem build_lp(
      const StateActionMetric& objective,
      const std::vector<OptimizationConstraint>& constraints) const;

  /// True when the optimal stationary distribution's support is one
  /// communicating class under the extracted policy.  When false, the
  /// LP optimum MIXES several recurrent classes: its value and
  /// constraints hold as expectations over which class a trajectory
  /// settles in, not pathwise — a known subtlety of constrained
  /// average-cost MDPs that callers should check before quoting the LP
  /// number for a single long run.
  bool support_is_single_class(const OptimizationResult& result) const;

 private:
  const SystemModel* model_;
  lp::Backend backend_;
};

}  // namespace dpm
