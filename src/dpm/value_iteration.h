// Value iteration on the optimality equations (paper Eq. 12).
//
// Independent of the LP machinery; solves the *unconstrained* discounted
// problem v = min_d { m_d + gamma P_d v } by successive approximation.
// Theorem A.1 guarantees the optimum is deterministic stationary Markov,
// so this is both a useful fast path for unconstrained POU and a
// cross-check of the LP2 solution in the test suite.
#pragma once

#include "dpm/metrics.h"
#include "dpm/policy.h"
#include "dpm/system_model.h"

namespace dpm {

struct ValueIterationOptions {
  double tolerance = 1e-12;        // sup-norm change to stop at
  std::size_t max_iterations = 2000000;
};

struct ValueIterationResult {
  Policy policy;          // greedy deterministic optimum
  linalg::Vector values;  // v*(s): optimal total discounted cost from s
  std::size_t iterations = 0;
  bool converged = false;
};

/// Minimizes the total expected discounted `metric` over all policies.
ValueIterationResult value_iteration(const SystemModel& model,
                                     const StateActionMetric& metric,
                                     double gamma,
                                     const ValueIterationOptions& options = {});

}  // namespace dpm
