// Power-management policies (paper Defs. 3.4-3.7).
//
// The optimizer's output — and the only class the optimum is ever in
// (Theorems A.1/A.2) — is the stationary Markov policy: deterministic
// (a command per state) or randomized (a distribution over commands per
// state).
#pragma once

#include <string>
#include <vector>

#include "dpm/command_set.h"
#include "linalg/matrix.h"

namespace dpm {

/// A stationary Markov policy: rows index system states, columns index
/// commands, row s is the decision delta_s (a probability distribution,
/// Def. 3.5).
///
/// Invariant: matrix rows are nonnegative and sum to 1 within 1e-7.
class Policy {
 public:
  /// Randomized policy from an S x A decision matrix.
  static Policy randomized(linalg::Matrix decisions);

  /// Deterministic policy (paper: vector representation of class D):
  /// `action_per_state[s]` is the command issued in state s.
  static Policy deterministic(const std::vector<std::size_t>& action_per_state,
                              std::size_t num_commands);

  /// Constant policy: the same command in every state (Example 3.4).
  static Policy constant(std::size_t num_states, std::size_t num_commands,
                         std::size_t command);

  std::size_t num_states() const noexcept { return decisions_.rows(); }
  std::size_t num_commands() const noexcept { return decisions_.cols(); }

  double probability(std::size_t state, std::size_t command) const {
    return decisions_(state, command);
  }
  const linalg::Matrix& matrix() const noexcept { return decisions_; }

  /// True when every row puts (almost) all mass on a single command.
  bool is_deterministic(double tol = 1e-9) const;

  /// For deterministic rows, the argmax command.
  std::size_t command_for(std::size_t state) const;

  /// Human-readable table; `commands` supplies column headers when the
  /// sizes match.
  std::string to_string(const CommandSet* commands = nullptr) const;

 private:
  explicit Policy(linalg::Matrix decisions);

  linalg::Matrix decisions_;
};

}  // namespace dpm
