// Howard policy iteration for the unconstrained discounted problem.
//
// The paper (Appendix A) lists policy improvement alongside successive
// approximation and linear programming as the classical solvers for
// POU.  Policy iteration converges in very few improvement rounds on
// DPM-sized models and provides a third independent implementation to
// cross-validate LP2 and value iteration against.
#pragma once

#include "dpm/metrics.h"
#include "dpm/policy.h"
#include "dpm/system_model.h"

namespace dpm {

struct PolicyIterationOptions {
  std::size_t max_improvements = 1000;
  /// Treat Q-value differences below this as ties (keeps the incumbent
  /// action, guaranteeing termination in exact arithmetic terms).
  double improvement_tol = 1e-10;
};

struct PolicyIterationResult {
  Policy policy;           // deterministic optimal policy
  linalg::Vector values;   // v^pi(s), exact for the returned policy
  std::size_t improvements = 0;
  bool converged = false;
};

/// Minimizes total expected discounted `metric`.  Each round evaluates
/// the incumbent deterministic policy exactly (linear solve) and takes
/// the greedy improvement; stops when no state strictly improves.
PolicyIterationResult policy_iteration(
    const SystemModel& model, const StateActionMetric& metric, double gamma,
    const PolicyIterationOptions& options = {});

}  // namespace dpm
