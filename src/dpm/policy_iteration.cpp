#include "dpm/policy_iteration.h"

#include <cmath>

#include "linalg/sparse_lu.h"

namespace dpm {

namespace {

// Exact evaluation of a deterministic policy: solve
// (I - gamma P_pi) v = m_pi with the sparse LU over the chain's CSR
// rows (O(nnz) assembly via discounted_transposed_columns).  The
// factorized matrix is the transpose, so btran solves the original
// system, giving v.
linalg::Vector evaluate_deterministic(const SystemModel& model,
                                      const std::vector<std::size_t>& actions,
                                      const linalg::Matrix& cost,
                                      double gamma) {
  const std::size_t n = model.num_states();
  const markov::SparseControlledChain& chain = model.chain().sparse();
  const std::vector<linalg::SparseColumn> cols =
      markov::discounted_transposed_columns(n, gamma, [&](std::size_t s) {
        return chain.row(actions[s], s);
      });
  linalg::SparseLu lu;
  if (!lu.factorize(n, cols)) {
    throw ModelError("policy_iteration: singular evaluation system");
  }
  linalg::Vector v(n);
  for (std::size_t s = 0; s < n; ++s) v[s] = cost(s, actions[s]);
  lu.btran(v);
  return v;
}

}  // namespace

PolicyIterationResult policy_iteration(const SystemModel& model,
                                       const StateActionMetric& metric,
                                       double gamma,
                                       const PolicyIterationOptions& options) {
  if (gamma <= 0.0 || gamma >= 1.0) {
    throw ModelError("policy_iteration: gamma must be in (0,1)");
  }
  const std::size_t n = model.num_states();
  const std::size_t na = model.num_commands();

  linalg::Matrix cost(n, na);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t a = 0; a < na; ++a) cost(s, a) = metric(s, a);
  }

  std::vector<std::size_t> actions(n, 0);
  linalg::Vector v;
  std::size_t rounds = 0;
  bool converged = false;
  for (; rounds < options.max_improvements; ++rounds) {
    v = evaluate_deterministic(model, actions, cost, gamma);

    bool changed = false;
    for (std::size_t s = 0; s < n; ++s) {
      double best_q = 0.0;
      std::size_t best_a = actions[s];
      {
        best_q = cost(s, best_a);
        for (const auto& [t, p] : model.chain().row(best_a, s)) {
          best_q += gamma * p * v[t];
        }
      }
      for (std::size_t a = 0; a < na; ++a) {
        if (a == actions[s]) continue;
        double q = cost(s, a);
        for (const auto& [t, p] : model.chain().row(a, s)) {
          q += gamma * p * v[t];
        }
        if (q < best_q - options.improvement_tol) {
          best_q = q;
          best_a = a;
        }
      }
      if (best_a != actions[s]) {
        actions[s] = best_a;
        changed = true;
      }
    }
    if (!changed) {
      converged = true;
      ++rounds;
      break;
    }
  }
  return PolicyIterationResult{Policy::deterministic(actions, na),
                               std::move(v), rounds, converged};
}

}  // namespace dpm
