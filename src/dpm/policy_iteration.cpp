#include "dpm/policy_iteration.h"

#include <cmath>

#include "linalg/lu.h"

namespace dpm {

namespace {

// Exact evaluation of a deterministic policy: solve
// (I - gamma P_pi) v = m_pi.
linalg::Vector evaluate_deterministic(const SystemModel& model,
                                      const std::vector<std::size_t>& actions,
                                      const linalg::Matrix& cost,
                                      double gamma) {
  const std::size_t n = model.num_states();
  linalg::Matrix a(n, n);
  linalg::Vector b(n);
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t act = actions[s];
    const linalg::Matrix& p = model.chain().matrix(act);
    for (std::size_t t = 0; t < n; ++t) {
      a(s, t) = (s == t ? 1.0 : 0.0) - gamma * p(s, t);
    }
    b[s] = cost(s, act);
  }
  return linalg::LuDecomposition(std::move(a)).solve(b);
}

}  // namespace

PolicyIterationResult policy_iteration(const SystemModel& model,
                                       const StateActionMetric& metric,
                                       double gamma,
                                       const PolicyIterationOptions& options) {
  if (gamma <= 0.0 || gamma >= 1.0) {
    throw ModelError("policy_iteration: gamma must be in (0,1)");
  }
  const std::size_t n = model.num_states();
  const std::size_t na = model.num_commands();

  linalg::Matrix cost(n, na);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t a = 0; a < na; ++a) cost(s, a) = metric(s, a);
  }

  std::vector<std::size_t> actions(n, 0);
  linalg::Vector v;
  std::size_t rounds = 0;
  bool converged = false;
  for (; rounds < options.max_improvements; ++rounds) {
    v = evaluate_deterministic(model, actions, cost, gamma);

    bool changed = false;
    for (std::size_t s = 0; s < n; ++s) {
      double best_q = 0.0;
      std::size_t best_a = actions[s];
      {
        const linalg::Matrix& p = model.chain().matrix(best_a);
        best_q = cost(s, best_a);
        for (std::size_t t = 0; t < n; ++t) {
          if (p(s, t) != 0.0) best_q += gamma * p(s, t) * v[t];
        }
      }
      for (std::size_t a = 0; a < na; ++a) {
        if (a == actions[s]) continue;
        const linalg::Matrix& p = model.chain().matrix(a);
        double q = cost(s, a);
        for (std::size_t t = 0; t < n; ++t) {
          if (p(s, t) != 0.0) q += gamma * p(s, t) * v[t];
        }
        if (q < best_q - options.improvement_tol) {
          best_q = q;
          best_a = a;
        }
      }
      if (best_a != actions[s]) {
        actions[s] = best_a;
        changed = true;
      }
    }
    if (!changed) {
      converged = true;
      ++rounds;
      break;
    }
  }
  return PolicyIterationResult{Policy::deterministic(actions, na),
                               std::move(v), rounds, converged};
}

}  // namespace dpm
