#include "dpm/service_provider.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace dpm {

ServiceProvider::Builder::Builder(std::size_t num_states, CommandSet commands)
    : n_(num_states),
      commands_(std::move(commands)),
      rate_(num_states, commands_.size()),
      power_(num_states, commands_.size()) {
  if (n_ == 0) {
    throw ModelError("ServiceProvider: needs at least one state");
  }
  names_.resize(n_);
  for (std::size_t s = 0; s < n_; ++s) names_[s] = "sp" + std::to_string(s);
  p_.assign(commands_.size(), linalg::Matrix(n_, n_));
  touched_.assign(commands_.size(), std::vector<bool>(n_, false));
}

ServiceProvider::Builder& ServiceProvider::Builder::state_name(
    std::size_t s, std::string name) {
  if (s >= n_) throw ModelError("ServiceProvider: state index out of range");
  names_.at(s) = std::move(name);
  return *this;
}

ServiceProvider::Builder& ServiceProvider::Builder::transition(
    std::size_t command, std::size_t from, std::size_t to, double prob) {
  if (command >= commands_.size() || from >= n_ || to >= n_) {
    throw ModelError("ServiceProvider: transition index out of range");
  }
  p_[command](from, to) = prob;
  touched_[command][from] = true;
  return *this;
}

ServiceProvider::Builder& ServiceProvider::Builder::transition_matrix(
    std::size_t command, linalg::Matrix p) {
  if (command >= commands_.size()) {
    throw ModelError("ServiceProvider: command index out of range");
  }
  if (p.rows() != n_ || p.cols() != n_) {
    throw ModelError("ServiceProvider: transition matrix shape mismatch");
  }
  p_[command] = std::move(p);
  touched_[command].assign(n_, true);
  return *this;
}

ServiceProvider::Builder& ServiceProvider::Builder::service_rate(
    std::size_t s, std::size_t command, double rate) {
  if (s >= n_ || command >= commands_.size()) {
    throw ModelError("ServiceProvider: service_rate index out of range");
  }
  if (rate < 0.0 || rate > 1.0) {
    throw ModelError("ServiceProvider: service rate must be in [0,1]");
  }
  rate_(s, command) = rate;
  return *this;
}

ServiceProvider::Builder& ServiceProvider::Builder::power(std::size_t s,
                                                          std::size_t command,
                                                          double watts) {
  if (s >= n_ || command >= commands_.size()) {
    throw ModelError("ServiceProvider: power index out of range");
  }
  power_(s, command) = watts;
  return *this;
}

ServiceProvider ServiceProvider::Builder::build() && {
  // Untouched rows become self-loops: the state ignores that command.
  for (std::size_t a = 0; a < p_.size(); ++a) {
    for (std::size_t s = 0; s < n_; ++s) {
      if (!touched_[a][s]) p_[a](s, s) = 1.0;
    }
  }
  markov::ControlledMarkovChain chain(std::move(p_));
  return ServiceProvider(std::move(commands_), std::move(names_),
                         std::move(chain), std::move(rate_),
                         std::move(power_));
}

ServiceProvider::ServiceProvider(CommandSet commands,
                                 std::vector<std::string> names,
                                 markov::ControlledMarkovChain chain,
                                 linalg::Matrix rate, linalg::Matrix power)
    : commands_(std::move(commands)),
      names_(std::move(names)),
      chain_(std::move(chain)),
      rate_(std::move(rate)),
      power_(std::move(power)) {}

std::size_t ServiceProvider::state_index(const std::string& name) const {
  const auto it = std::find(names_.begin(), names_.end(), name);
  if (it == names_.end()) {
    throw ModelError("ServiceProvider: unknown state '" + name + "'");
  }
  return static_cast<std::size_t>(it - names_.begin());
}

double ServiceProvider::expected_transition_time(std::size_t from,
                                                 std::size_t to,
                                                 std::size_t command) const {
  const double p = chain_.transition(from, to, command);
  if (p <= 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / p;
}

bool ServiceProvider::is_sleep_state(std::size_t s) const {
  for (std::size_t a = 0; a < commands_.size(); ++a) {
    if (rate_(s, a) > 0.0) return false;
  }
  return true;
}

}  // namespace dpm
