// Service provider — the power-manageable resource (paper Def. 3.1).
//
// A triple (Sigma, b, c): a controlled Markov chain over SP states, a
// service rate b(s, a) in [0,1] (probability of completing one request
// per time slice), and a power consumption c(s, a) in Watts.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dpm/command_set.h"
#include "linalg/matrix.h"
#include "markov/controlled_chain.h"

namespace dpm {

class ServiceProvider {
 public:
  /// Step-by-step construction with validation deferred to build().
  ///
  /// Transition rows that are left untouched for some command default to
  /// self-loops (state insensitive to that command) so sparse models --
  /// like the disk drive's transient states -- stay concise.
  class Builder {
   public:
    Builder(std::size_t num_states, CommandSet commands);

    Builder& state_name(std::size_t s, std::string name);

    /// Sets P_a(from, to) = prob.  Marks the row as user-specified.
    Builder& transition(std::size_t command, std::size_t from, std::size_t to,
                        double prob);

    /// Replaces the whole matrix for one command.
    Builder& transition_matrix(std::size_t command, linalg::Matrix p);

    Builder& service_rate(std::size_t s, std::size_t command, double rate);
    Builder& power(std::size_t s, std::size_t command, double watts);

    /// Validates everything (row-stochasticity per command, rates in
    /// [0,1]) and produces the immutable provider.
    ServiceProvider build() &&;

   private:
    std::size_t n_;
    CommandSet commands_;
    std::vector<std::string> names_;
    std::vector<linalg::Matrix> p_;         // one per command
    std::vector<std::vector<bool>> touched_;  // [a][row]
    linalg::Matrix rate_;                   // n x A
    linalg::Matrix power_;                  // n x A
  };

  std::size_t num_states() const noexcept { return chain_.num_states(); }
  const CommandSet& commands() const noexcept { return commands_; }
  const markov::ControlledMarkovChain& chain() const noexcept {
    return chain_;
  }

  const std::string& state_name(std::size_t s) const { return names_.at(s); }

  /// Index of a named state; throws ModelError when absent.
  std::size_t state_index(const std::string& name) const;

  double service_rate(std::size_t s, std::size_t command) const {
    return rate_(s, command);
  }
  double power(std::size_t s, std::size_t command) const {
    return power_(s, command);
  }

  /// Expected number of slices to move from `from` to `to` when `command`
  /// is asserted every slice (paper Eq. 2: 1 / p_{from,to}(a)); infinity
  /// when the one-step probability is zero.
  double expected_transition_time(std::size_t from, std::size_t to,
                                  std::size_t command) const;

  /// States with zero service rate under every command are sleep states
  /// (paper Sec. III: "states with zero service rate are called sleep
  /// states, states with nonnull service rate are called active").
  bool is_sleep_state(std::size_t s) const;

 private:
  ServiceProvider(CommandSet commands, std::vector<std::string> names,
                  markov::ControlledMarkovChain chain, linalg::Matrix rate,
                  linalg::Matrix power);

  CommandSet commands_;
  std::vector<std::string> names_;
  markov::ControlledMarkovChain chain_;
  linalg::Matrix rate_;
  linalg::Matrix power_;
};

}  // namespace dpm
