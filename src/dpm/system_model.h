// Composition of SP x SR x SQ into the system's controlled Markov chain
// (paper Section III-A, Eqs. 3-4 and Example 3.5).
//
// Per time slice, from system state (sp, sr, q) under command a:
//   1. the SR moves sr -> sr' (autonomous);
//   2. r(sr') requests arrive during the slice (Example 3.5 conditions
//      arrivals on the *new* SR state: the (on,0,0) -> (on,1,0)
//      transition carries probability p^R_{01} * b * p^S);
//   3. the SP moves sp -> sp' with probability p^SP_a(sp, sp') and offers
//      service rate b(sp, a) (rate depends on the *departure* state and
//      the command, Def. 3.1);
//   4. the queue absorbs arrivals minus the (at most one) serviced
//      request, clamped to [0, capacity]; arrivals that overflow are
//      lost (Eq. 3 corner cases).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dpm/service_provider.h"
#include "dpm/service_requester.h"
#include "markov/controlled_chain.h"
#include "sim/hash.h"

namespace dpm {

/// Decomposed system state (paper: the triple (s_p, s_r, s_q)).
struct SystemState {
  std::size_t sp = 0;
  std::size_t sr = 0;
  std::size_t q = 0;

  bool operator==(const SystemState&) const = default;
};

/// Distribution over next queue lengths given current queue, arrivals in
/// the slice, service rate, and capacity.  Exposed for direct testing of
/// the Eq. 3 corner cases.  Returns {next_q, probability} pairs (at most
/// two entries).
std::vector<std::pair<std::size_t, double>> queue_transition_distribution(
    std::size_t q, unsigned arrivals, double service_rate,
    std::size_t capacity);

/// Optional hook making SP transitions depend on the incoming SR state.
/// Used for reactive components such as the SA-1100 CPU, which wakes up
/// unconditionally on request arrival regardless of PM commands
/// (Sec. VI-C).  Must return a row-stochastic distribution over sp_to
/// for every (sp_from, command, sr_to).
using SpTransitionOverride = std::function<double(
    std::size_t sp_from, std::size_t sp_to, std::size_t command,
    std::size_t sr_to)>;

/// The composed power-managed system: a controlled Markov chain over
/// S = S_SP x S_SR x S_SQ with per-command stochastic matrices (Eq. 4),
/// plus the cost ingredients (power, queue length, request-loss states)
/// the optimizer and simulator consume.
class SystemModel {
 public:
  /// Composes the monolithic model ("Markov composer" block, Fig. 7).
  /// `queue_capacity` may be zero (no buffering; arrivals not serviced in
  /// the same slice are lost -- the CPU case study).
  static SystemModel compose(ServiceProvider sp, ServiceRequester sr,
                             std::size_t queue_capacity,
                             SpTransitionOverride override_sp = nullptr);

  std::size_t num_states() const noexcept { return chain_->num_states(); }
  std::size_t num_commands() const noexcept { return chain_->num_commands(); }
  std::size_t queue_capacity() const noexcept { return capacity_; }

  const ServiceProvider& provider() const noexcept { return sp_; }
  const ServiceRequester& requester() const noexcept { return sr_; }
  const markov::ControlledMarkovChain& chain() const noexcept {
    return *chain_;
  }

  /// Flat index <-> structured state.
  std::size_t index_of(const SystemState& s) const;
  SystemState decompose(std::size_t index) const;
  std::string state_label(std::size_t index) const;

  /// Cost ingredients (paper Sec. III-B).
  double power(std::size_t state, std::size_t command) const;
  double queue_length(std::size_t state) const;
  /// True in states where the SR is issuing requests and the queue is
  /// full -- the "request loss" condition the paper constrains
  /// (Appendix A: "states where SR issues a request and the queue is
  /// full").  With zero capacity: requests arriving while the SP sleeps.
  bool is_loss_state(std::size_t state) const;
  /// Service rate offered in a system state under a command.
  double service_rate(std::size_t state, std::size_t command) const;

  /// The effective SP transition law used in the composition: the
  /// override when one was supplied (reactive components), the SP's own
  /// chain otherwise.  The simulator must sample from this — not from
  /// the raw SP chain — to stay faithful to the composed model.
  double sp_transition(std::size_t sp_from, std::size_t sp_to,
                       std::size_t command, std::size_t sr_to) const;

  /// Initial distribution concentrated on one structured state.
  linalg::Vector point_distribution(const SystemState& s) const;
  /// Uniform initial distribution.
  linalg::Vector uniform_distribution() const;

  /// Streams the model's canonical content into `h`: the composed CSR
  /// chain plus every cost ingredient the optimizer and simulator
  /// consume (power, queue length, loss states, service rates) over the
  /// full (state, command) grid.  Two models hash equal iff they are
  /// observationally identical to every consumer — the content-address
  /// contract of the scenario result cache (src/scenario/cache.h).
  void hash_into(sim::Fnv1a& h) const;

 private:
  SystemModel(ServiceProvider sp, ServiceRequester sr, std::size_t capacity,
              markov::ControlledMarkovChain chain,
              SpTransitionOverride override_sp);

  ServiceProvider sp_;
  ServiceRequester sr_;
  std::size_t capacity_;
  // optional<> only to allow member-wise construction order; always set.
  std::optional<markov::ControlledMarkovChain> chain_;
  SpTransitionOverride override_;  // may be null (plain product form)
};

}  // namespace dpm
