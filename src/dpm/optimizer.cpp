#include "dpm/optimizer.h"

#include <cmath>
#include <string>
#include <utility>

#include "dpm/crash.h"
#include "robust/supervisor.h"

namespace dpm {

namespace {

/// Column count from which minimize() seeds cold solves with a
/// policy-iteration crash basis (see dpm/crash.h).  Below it the crash
/// machinery costs more than the pivots it saves, and the small
/// case-study scenarios keep their historical byte-for-byte pivot
/// trajectories (golden tier).
constexpr std::size_t kCrashMinColumns = 4096;

/// Achieved per-step value of each constraint at the LP point x
/// (columns laid out x[s*A + a]); shared by the cold and warm-started
/// solve paths so their accounting cannot drift apart.
std::vector<double> achieved_per_step(
    const SystemModel& model, double one_minus_gamma, const linalg::Vector& x,
    const std::vector<OptimizationConstraint>& constraints) {
  const std::size_t na = model.num_commands();
  std::vector<double> achieved;
  achieved.reserve(constraints.size());
  for (const auto& oc : constraints) {
    double total = 0.0;
    for (std::size_t col = 0; col < x.size(); ++col) {
      const double v = x[col];
      if (v != 0.0) total += oc.metric(col / na, col % na) * v;
    }
    achieved.push_back(one_minus_gamma * total);
  }
  return achieved;
}

/// One supervised solve (robust/supervisor.h): the escalation ladder
/// turns transient numerical trouble into a determination.  The rare
/// undetermined outcome (unhealed numerical failure, expired deadline)
/// surfaces as LpError so the layer above — the scenario runner —
/// converts it into a structured unit failure instead of this code
/// silently treating a broken solve as "infeasible".
lp::LpSolution supervised_solve(const lp::LpProblem& problem,
                                lp::Backend backend,
                                const lp::SimplexBasis* warm = nullptr,
                                lp::SimplexBasis* basis_out = nullptr,
                                const std::vector<std::size_t>* crash =
                                    nullptr) {
  robust::SupervisorOptions opts;
  opts.backend = backend;
  // Crash seed (revised simplex only; other backends ignore it).  The
  // supervisor's cold-restart and later rungs drop it themselves.
  opts.lp.crash_columns = crash;
  const robust::SolveSupervisor supervisor(opts);
  robust::SolveOutcome outcome = supervisor.solve(problem, warm, basis_out);
  if (!outcome.determined()) {
    std::string msg = "supervised solve abandoned";
    if (outcome.failure.has_value()) {
      msg += ": ";
      msg += robust::to_string(outcome.failure->reason);
      if (!outcome.failure->detail.empty()) {
        msg += " (" + outcome.failure->detail + ")";
      }
    }
    throw lp::LpError(msg);
  }
  return std::move(outcome.solution);
}

}  // namespace

PolicyOptimizer::PolicyOptimizer(const SystemModel& model,
                                 OptimizerConfig config)
    : model_(&model), config_(std::move(config)) {
  if (config_.discount <= 0.0 || config_.discount >= 1.0) {
    throw ModelError("PolicyOptimizer: discount must be in (0,1)");
  }
  if (config_.initial_distribution.empty()) {
    config_.initial_distribution = model.uniform_distribution();
  }
  if (config_.initial_distribution.size() != model.num_states()) {
    throw ModelError("PolicyOptimizer: initial distribution size mismatch");
  }
  double mass = 0.0;
  for (double v : config_.initial_distribution) {
    if (v < -1e-12) {
      throw ModelError("PolicyOptimizer: negative initial probability");
    }
    mass += v;
  }
  if (std::abs(mass - 1.0) > 1e-7) {
    throw ModelError("PolicyOptimizer: initial distribution must sum to 1");
  }
}

lp::LpProblem PolicyOptimizer::build_lp(
    const StateActionMetric& objective,
    const std::vector<OptimizationConstraint>& constraints) const {
  const std::size_t n = model_->num_states();
  const std::size_t na = model_->num_commands();
  const double gamma = config_.discount;
  const double horizon = 1.0 / (1.0 - gamma);

  lp::LpProblem problem;
  // One variable per (state, command) pair, column index s*na + a.
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t a = 0; a < na; ++a) {
      problem.add_variable(objective(s, a),
                           "x(" + std::to_string(s) + "," +
                               std::to_string(a) + ")");
    }
  }

  // Balance equations (the "incoming flow = outgoing flow" constraints
  // of LP2, Fig. 11): for every state j,
  //   sum_a x_{j,a} - gamma * sum_{s,a} P_a(s,j) x_{s,a} = p0_j.
  // Assembled straight off the chain's CSR rows: each (s, a) pair
  // contributes its outgoing-flow term plus one term per stored
  // successor, so assembly is O(nnz), independent of n^2.
  const markov::SparseControlledChain& chain = model_->chain().sparse();
  std::vector<lp::Constraint> balance(n);
  for (std::size_t j = 0; j < n; ++j) {
    balance[j].sense = lp::Sense::kEq;
    balance[j].rhs = config_.initial_distribution[j];
    balance[j].name = "balance(" + std::to_string(j) + ")";
    balance[j].terms.reserve(na + 8);
  }
  for (std::size_t a = 0; a < na; ++a) {
    for (std::size_t s = 0; s < n; ++s) {
      const std::size_t col = s * na + a;
      balance[s].terms.emplace_back(col, 1.0);  // outgoing flow
      for (const auto& [j, p] : chain.row(a, s)) {
        balance[j].terms.emplace_back(col, -gamma * p);
      }
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    problem.add_constraint(std::move(balance[j]));
  }

  // Metric constraints, scaled from per-step averages to discounted
  // totals.
  for (const auto& oc : constraints) {
    lp::Constraint c;
    c.sense = lp::Sense::kLe;
    c.rhs = oc.per_step_bound * horizon;
    c.name = oc.name;
    c.terms.reserve(n * na);
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t a = 0; a < na; ++a) {
        const double m = oc.metric(s, a);
        if (m != 0.0) c.terms.emplace_back(s * na + a, m);
      }
    }
    problem.add_constraint(std::move(c));
  }
  return problem;
}

Policy PolicyOptimizer::extract_policy(
    const linalg::Vector& frequencies) const {
  const std::size_t n = model_->num_states();
  const std::size_t na = model_->num_commands();
  if (frequencies.size() != n * na) {
    throw ModelError("extract_policy: frequency vector size mismatch");
  }
  linalg::Matrix decisions(n, na);
  for (std::size_t s = 0; s < n; ++s) {
    double total = 0.0;
    for (std::size_t a = 0; a < na; ++a) {
      total += std::max(0.0, frequencies[s * na + a]);
    }
    if (total <= 1e-300) {
      // Unreachable under the optimal frequencies: any decision works;
      // pick uniform so the choice is explicit and valid.
      for (std::size_t a = 0; a < na; ++a) {
        decisions(s, a) = 1.0 / static_cast<double>(na);
      }
      continue;
    }
    for (std::size_t a = 0; a < na; ++a) {
      decisions(s, a) = std::max(0.0, frequencies[s * na + a]) / total;
    }
  }
  return Policy::randomized(std::move(decisions));
}

OptimizationResult PolicyOptimizer::minimize(
    const StateActionMetric& objective,
    const std::vector<OptimizationConstraint>& constraints) const {
  const lp::LpProblem problem = build_lp(objective, constraints);

  // Large cold solves start from a policy-iteration crash basis: the
  // greedy deterministic policy's occupation-measure columns seed the
  // balance rows, turning thousands of phase-1/2 pivots into a short
  // phase-2 polish (dpm/crash.h).  Constraints are ignored by the
  // greedy policy on purpose — the engine's repair path absorbs
  // whatever infeasibility that leaves, or falls back cold.
  std::vector<std::size_t> crash_cols;
  if (config_.backend == lp::Backend::kRevisedSimplex &&
      model_->num_states() * model_->num_commands() >= kCrashMinColumns) {
    const std::vector<std::size_t> actions = greedy_crash_actions(
        model_->chain().sparse(), objective, config_.discount);
    crash_cols = crash_columns_for_lp(actions, model_->num_commands(),
                                      problem.num_constraints());
  }
  const lp::LpSolution lp_sol =
      supervised_solve(problem, config_.backend, nullptr, nullptr,
                       crash_cols.empty() ? nullptr : &crash_cols);

  OptimizationResult result;
  result.lp_status = lp_sol.status;
  result.lp_iterations = lp_sol.iterations;
  if (lp_sol.status != lp::LpStatus::kOptimal) {
    return result;  // infeasible (paper: f(P) = +inf) or solver failure
  }
  const double one_minus_gamma = 1.0 - config_.discount;
  result.feasible = true;
  result.frequencies = lp_sol.x;
  result.objective_per_step = one_minus_gamma * lp_sol.objective;
  result.policy = extract_policy(lp_sol.x);

  result.constraint_per_step =
      achieved_per_step(*model_, one_minus_gamma, lp_sol.x, constraints);
  return result;
}

OptimizationResult PolicyOptimizer::minimize_power(
    double max_avg_queue, std::optional<double> max_loss_rate) const {
  std::vector<OptimizationConstraint> constraints;
  constraints.push_back(
      {metrics::queue_length(*model_), max_avg_queue, "performance"});
  if (max_loss_rate) {
    constraints.push_back(
        {metrics::request_loss(*model_), *max_loss_rate, "request-loss"});
  }
  return minimize(metrics::power(*model_), constraints);
}

OptimizationResult PolicyOptimizer::minimize_penalty(
    double max_avg_power, std::optional<double> max_loss_rate) const {
  std::vector<OptimizationConstraint> constraints;
  constraints.push_back({metrics::power(*model_), max_avg_power, "power"});
  if (max_loss_rate) {
    constraints.push_back(
        {metrics::request_loss(*model_), *max_loss_rate, "request-loss"});
  }
  return minimize(metrics::queue_length(*model_), constraints);
}

std::vector<PolicyOptimizer::ParetoPoint> PolicyOptimizer::sweep(
    const StateActionMetric& objective, const StateActionMetric& swept,
    std::string swept_name, const std::vector<double>& sweep_bounds,
    const std::vector<OptimizationConstraint>& fixed_constraints) const {
  std::vector<ParetoPoint> curve;
  curve.reserve(sweep_bounds.size());

  if (config_.backend != lp::Backend::kRevisedSimplex) {
    // Backends without a warm-start contract: cold-solve every point.
    for (const double bound : sweep_bounds) {
      std::vector<OptimizationConstraint> constraints = fixed_constraints;
      constraints.push_back({swept, bound, swept_name});
      OptimizationResult r = minimize(objective, constraints);
      ParetoPoint pt;
      pt.bound = bound;
      pt.feasible = r.feasible;
      pt.lp_iterations = r.lp_iterations;
      if (r.feasible) {
        pt.objective = r.objective_per_step;
        pt.policy = std::move(r.policy);
        pt.constraint_per_step = std::move(r.constraint_per_step);
        pt.frequencies = std::move(r.frequencies);
      }
      curve.push_back(std::move(pt));
    }
    return curve;
  }

  // Warm-started path: the LP matrix is identical across the sweep (the
  // swept constraint is the last row; only its rhs moves), so each point
  // restarts the revised simplex from the previous optimal basis.
  std::vector<OptimizationConstraint> constraints = fixed_constraints;
  constraints.push_back(
      {swept, sweep_bounds.empty() ? 0.0 : sweep_bounds.front(), swept_name});
  lp::LpProblem lp = build_lp(objective, constraints);
  const std::size_t swept_row =
      model_->num_states() + fixed_constraints.size();
  const double one_minus_gamma = 1.0 - config_.discount;
  const double horizon = 1.0 / one_minus_gamma;

  lp::SimplexBasis basis;
  for (const double bound : sweep_bounds) {
    lp.set_rhs(swept_row, bound * horizon);
    lp::SimplexBasis next;
    const lp::LpSolution s =
        supervised_solve(lp, lp::Backend::kRevisedSimplex,
                         basis.empty() ? nullptr : &basis, &next);
    ParetoPoint pt;
    pt.bound = bound;
    pt.lp_iterations = s.iterations;
    if (s.status == lp::LpStatus::kOptimal) {
      pt.feasible = true;
      pt.objective = one_minus_gamma * s.objective;
      pt.policy = extract_policy(s.x);
      pt.constraint_per_step =
          achieved_per_step(*model_, one_minus_gamma, s.x, constraints);
      pt.frequencies = s.x;
      basis = std::move(next);  // warm-start the next bound from here
    }
    curve.push_back(std::move(pt));
  }
  return curve;
}

}  // namespace dpm
