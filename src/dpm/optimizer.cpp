#include "dpm/optimizer.h"

#include <cmath>
#include <utility>

namespace dpm {

PolicyOptimizer::PolicyOptimizer(const SystemModel& model,
                                 OptimizerConfig config)
    : model_(&model), config_(std::move(config)) {
  if (config_.discount <= 0.0 || config_.discount >= 1.0) {
    throw ModelError("PolicyOptimizer: discount must be in (0,1)");
  }
  if (config_.initial_distribution.empty()) {
    config_.initial_distribution = model.uniform_distribution();
  }
  if (config_.initial_distribution.size() != model.num_states()) {
    throw ModelError("PolicyOptimizer: initial distribution size mismatch");
  }
  double mass = 0.0;
  for (double v : config_.initial_distribution) {
    if (v < -1e-12) {
      throw ModelError("PolicyOptimizer: negative initial probability");
    }
    mass += v;
  }
  if (std::abs(mass - 1.0) > 1e-7) {
    throw ModelError("PolicyOptimizer: initial distribution must sum to 1");
  }
}

lp::LpProblem PolicyOptimizer::build_lp(
    const StateActionMetric& objective,
    const std::vector<OptimizationConstraint>& constraints) const {
  const std::size_t n = model_->num_states();
  const std::size_t na = model_->num_commands();
  const double gamma = config_.discount;
  const double horizon = 1.0 / (1.0 - gamma);

  lp::LpProblem problem;
  // One variable per (state, command) pair, column index s*na + a.
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t a = 0; a < na; ++a) {
      problem.add_variable(objective(s, a),
                           "x(" + std::to_string(s) + "," +
                               std::to_string(a) + ")");
    }
  }

  // Balance equations (the "incoming flow = outgoing flow" constraints
  // of LP2, Fig. 11): for every state j,
  //   sum_a x_{j,a} - gamma * sum_{s,a} P_a(s,j) x_{s,a} = p0_j.
  for (std::size_t j = 0; j < n; ++j) {
    lp::Constraint c;
    c.sense = lp::Sense::kEq;
    c.rhs = config_.initial_distribution[j];
    c.name = "balance(" + std::to_string(j) + ")";
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t a = 0; a < na; ++a) {
        double coeff = -gamma * model_->chain().transition(s, j, a);
        if (s == j) coeff += 1.0;
        if (coeff != 0.0) c.terms.emplace_back(s * na + a, coeff);
      }
    }
    problem.add_constraint(std::move(c));
  }

  // Metric constraints, scaled from per-step averages to discounted
  // totals.
  for (const auto& oc : constraints) {
    lp::Constraint c;
    c.sense = lp::Sense::kLe;
    c.rhs = oc.per_step_bound * horizon;
    c.name = oc.name;
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t a = 0; a < na; ++a) {
        const double m = oc.metric(s, a);
        if (m != 0.0) c.terms.emplace_back(s * na + a, m);
      }
    }
    problem.add_constraint(std::move(c));
  }
  return problem;
}

Policy PolicyOptimizer::extract_policy(
    const linalg::Vector& frequencies) const {
  const std::size_t n = model_->num_states();
  const std::size_t na = model_->num_commands();
  if (frequencies.size() != n * na) {
    throw ModelError("extract_policy: frequency vector size mismatch");
  }
  linalg::Matrix decisions(n, na);
  for (std::size_t s = 0; s < n; ++s) {
    double total = 0.0;
    for (std::size_t a = 0; a < na; ++a) {
      total += std::max(0.0, frequencies[s * na + a]);
    }
    if (total <= 1e-300) {
      // Unreachable under the optimal frequencies: any decision works;
      // pick uniform so the choice is explicit and valid.
      for (std::size_t a = 0; a < na; ++a) {
        decisions(s, a) = 1.0 / static_cast<double>(na);
      }
      continue;
    }
    for (std::size_t a = 0; a < na; ++a) {
      decisions(s, a) = std::max(0.0, frequencies[s * na + a]) / total;
    }
  }
  return Policy::randomized(std::move(decisions));
}

OptimizationResult PolicyOptimizer::minimize(
    const StateActionMetric& objective,
    const std::vector<OptimizationConstraint>& constraints) const {
  const lp::LpProblem problem = build_lp(objective, constraints);
  const lp::LpSolution lp_sol = lp::solve(problem, config_.backend);

  OptimizationResult result;
  result.lp_status = lp_sol.status;
  result.lp_iterations = lp_sol.iterations;
  if (lp_sol.status != lp::LpStatus::kOptimal) {
    return result;  // infeasible (paper: f(P) = +inf) or solver failure
  }
  const double one_minus_gamma = 1.0 - config_.discount;
  result.feasible = true;
  result.frequencies = lp_sol.x;
  result.objective_per_step = one_minus_gamma * lp_sol.objective;
  result.policy = extract_policy(lp_sol.x);

  const std::size_t n = model_->num_states();
  const std::size_t na = model_->num_commands();
  result.constraint_per_step.reserve(constraints.size());
  for (const auto& oc : constraints) {
    double total = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t a = 0; a < na; ++a) {
        const double x = lp_sol.x[s * na + a];
        if (x != 0.0) total += oc.metric(s, a) * x;
      }
    }
    result.constraint_per_step.push_back(one_minus_gamma * total);
  }
  return result;
}

OptimizationResult PolicyOptimizer::minimize_power(
    double max_avg_queue, std::optional<double> max_loss_rate) const {
  std::vector<OptimizationConstraint> constraints;
  constraints.push_back(
      {metrics::queue_length(*model_), max_avg_queue, "performance"});
  if (max_loss_rate) {
    constraints.push_back(
        {metrics::request_loss(*model_), *max_loss_rate, "request-loss"});
  }
  return minimize(metrics::power(*model_), constraints);
}

OptimizationResult PolicyOptimizer::minimize_penalty(
    double max_avg_power, std::optional<double> max_loss_rate) const {
  std::vector<OptimizationConstraint> constraints;
  constraints.push_back({metrics::power(*model_), max_avg_power, "power"});
  if (max_loss_rate) {
    constraints.push_back(
        {metrics::request_loss(*model_), *max_loss_rate, "request-loss"});
  }
  return minimize(metrics::queue_length(*model_), constraints);
}

std::vector<PolicyOptimizer::ParetoPoint> PolicyOptimizer::sweep(
    const StateActionMetric& objective, const StateActionMetric& swept,
    std::string swept_name, const std::vector<double>& sweep_bounds,
    const std::vector<OptimizationConstraint>& fixed_constraints) const {
  std::vector<ParetoPoint> curve;
  curve.reserve(sweep_bounds.size());
  for (const double bound : sweep_bounds) {
    std::vector<OptimizationConstraint> constraints = fixed_constraints;
    constraints.push_back({swept, bound, swept_name});
    OptimizationResult r = minimize(objective, constraints);
    ParetoPoint pt;
    pt.bound = bound;
    pt.feasible = r.feasible;
    if (r.feasible) {
      pt.objective = r.objective_per_step;
      pt.policy = std::move(r.policy);
    }
    curve.push_back(std::move(pt));
  }
  return curve;
}

}  // namespace dpm
