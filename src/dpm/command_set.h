// Power-manager command alphabet (paper Section III-A).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace dpm {

/// Thrown on malformed models (invalid probabilities, unknown names,
/// dimension mismatches in model components).
class ModelError : public std::runtime_error {
 public:
  explicit ModelError(const std::string& what) : std::runtime_error(what) {}
};

/// The finite set of commands the power manager can issue (e.g.
/// {s_on, s_off} in the running example; {go_active, go_idle, go_lpidle,
/// go_standby, go_sleep} for the disk drive).
///
/// Invariant: names are non-empty and unique.
class CommandSet {
 public:
  explicit CommandSet(std::vector<std::string> names);

  std::size_t size() const noexcept { return names_.size(); }
  const std::string& name(std::size_t a) const { return names_.at(a); }

  /// Index of a named command; throws ModelError when absent.
  std::size_t index(const std::string& name) const;

  bool contains(const std::string& name) const noexcept;

 private:
  std::vector<std::string> names_;
};

}  // namespace dpm
