// Power-manager controllers for simulation.
//
// The optimizer produces stationary Markov policies (a function of the
// current system state), but the heuristics the paper compares against
// in Figs. 8b/9b/10 — timeouts, randomized timeouts — depend on history
// (idle time).  The Controller interface covers both.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "dpm/policy.h"
#include "dpm/system_model.h"
#include "sim/rng.h"

namespace dpm::sim {

/// Decides the command to issue at the start of each slice, observing
/// the current structured system state (and any internal history).
class Controller {
 public:
  virtual ~Controller() = default;

  /// Called at the start of a simulation run.
  virtual void reset() {}

  /// The command for this slice.  `arrivals_last_slice` is the number of
  /// requests that arrived in the previous slice (the observable the
  /// timeout heuristics key on).
  virtual std::size_t decide(const SystemState& state,
                             unsigned arrivals_last_slice, Rng& rng) = 0;
};

/// Executes a (possibly randomized) stationary Markov policy: samples a
/// command from the decision row of the current state (Def. 3.5).
class PolicyController final : public Controller {
 public:
  PolicyController(const SystemModel& model, dpm::Policy policy);

  std::size_t decide(const SystemState& state, unsigned arrivals_last_slice,
                     Rng& rng) override;

 private:
  const SystemModel* model_;
  dpm::Policy policy_;
};

/// Greedy/eager heuristic (paper Sec. I and Fig. 8b upward triangles):
/// issues `sleep_command` as soon as there is no pending work (empty
/// queue, no arrivals) and `wake_command` otherwise.
class GreedyController final : public Controller {
 public:
  GreedyController(std::size_t sleep_command, std::size_t wake_command)
      : sleep_(sleep_command), wake_(wake_command) {}

  std::size_t decide(const SystemState& state, unsigned arrivals_last_slice,
                     Rng& rng) override;

 private:
  std::size_t sleep_;
  std::size_t wake_;
};

/// Timeout heuristic (paper Fig. 8b downward triangles; the policy class
/// widely used for disk power management [12]): shuts down after the
/// system has been idle for `timeout` consecutive slices; wakes on any
/// pending work.
class TimeoutController final : public Controller {
 public:
  TimeoutController(std::size_t timeout_slices, std::size_t sleep_command,
                    std::size_t wake_command)
      : timeout_(timeout_slices), sleep_(sleep_command), wake_(wake_command) {}

  void reset() override { idle_run_ = 0; }

  std::size_t decide(const SystemState& state, unsigned arrivals_last_slice,
                     Rng& rng) override;

 private:
  std::size_t timeout_;
  std::size_t sleep_;
  std::size_t wake_;
  std::size_t idle_run_ = 0;
};

/// Randomized timeout heuristic (paper Fig. 8b boxes): at the start of
/// each idle period, draws the timeout and the target sleep command from
/// given distributions.
class RandomizedTimeoutController final : public Controller {
 public:
  struct Choice {
    std::size_t timeout_slices;
    std::size_t sleep_command;
    double weight;  // unnormalized selection probability
  };

  RandomizedTimeoutController(std::vector<Choice> choices,
                              std::size_t wake_command);

  void reset() override;

  std::size_t decide(const SystemState& state, unsigned arrivals_last_slice,
                     Rng& rng) override;

 private:
  void redraw(Rng& rng);

  std::vector<Choice> choices_;
  std::vector<double> weights_;
  std::size_t wake_;
  std::size_t idle_run_ = 0;
  std::size_t current_ = 0;
  bool drawn_ = false;
};

/// Constant policy (Example 3.4): always the same command.
class ConstantController final : public Controller {
 public:
  explicit ConstantController(std::size_t command) : command_(command) {}

  std::size_t decide(const SystemState&, unsigned, Rng&) override {
    return command_;
  }

 private:
  std::size_t command_;
};

}  // namespace dpm::sim
