#include "sim/adaptive_controller.h"

#include <vector>

namespace dpm::sim {

AdaptiveController::AdaptiveController(SrFitter fitter, ModelFactory factory,
                                       OptimizeFn optimize,
                                       std::size_t fallback_command,
                                       Options options)
    : fitter_(std::move(fitter)),
      factory_(std::move(factory)),
      optimize_(std::move(optimize)),
      fallback_(fallback_command),
      options_(options) {
  if (!fitter_ || !factory_ || !optimize_) {
    throw ModelError(
        "AdaptiveController: fitter, factory and optimizer required");
  }
  if (options_.window < 16 || options_.warmup < 2) {
    throw ModelError("AdaptiveController: window/warmup too small");
  }
}

AdaptiveController::AdaptiveController(SrFitter fitter, ModelFactory factory,
                                       OptimizeFn optimize,
                                       std::size_t fallback_command)
    : AdaptiveController(std::move(fitter), std::move(factory),
                         std::move(optimize), fallback_command, Options{}) {}

void AdaptiveController::reset() {
  window_.clear();
  since_refit_ = 0;
  refits_ = 0;
  model_.reset();
  policy_.reset();
}

void AdaptiveController::refit() {
  const std::vector<unsigned> stream(window_.begin(), window_.end());
  dpm::ServiceRequester sr = fitter_(stream);
  SystemModel rebuilt = factory_(std::move(sr));
  std::optional<dpm::Policy> refreshed = optimize_(rebuilt);
  if (refreshed) {
    if (refreshed->num_states() != rebuilt.num_states()) {
      throw ModelError("AdaptiveController: optimizer returned a policy "
                       "for a different state space");
    }
    model_.emplace(std::move(rebuilt));
    policy_ = std::move(refreshed);
    ++refits_;
  }
}

std::size_t AdaptiveController::decide(const SystemState& state,
                                       unsigned arrivals_last_slice,
                                       Rng& rng) {
  window_.push_back(arrivals_last_slice > 0 ? 1u : 0u);
  if (window_.size() > options_.window) window_.pop_front();

  ++since_refit_;
  const bool warm = window_.size() >= options_.warmup;
  if (warm && (policy_ == std::nullopt ||
               since_refit_ >= options_.reoptimize_every)) {
    refit();
    since_refit_ = 0;
  }
  if (!policy_) return fallback_;

  const std::size_t s = model_->index_of(state);
  return rng.sample_row(
      [&](std::size_t a) { return policy_->probability(s, a); },
      policy_->num_commands());
}

}  // namespace dpm::sim
