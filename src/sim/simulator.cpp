#include "sim/simulator.h"

#include <algorithm>

namespace dpm::sim {

double SimulationResult::metric(const StateActionMetric& m) const {
  double acc = 0.0;
  const std::size_t total = visit_frequencies.size();
  for (std::size_t k = 0; k < total; ++k) {
    if (visit_frequencies[k] == 0.0) continue;
    // Layout [s * A + a]; A is recoverable only by the caller, so we
    // carry it implicitly: metric() is called through the helpers below
    // which know the model.  Here we only need the flat index split.
    acc += visit_frequencies[k] * m(k / num_commands_, k % num_commands_);
  }
  return acc;
}

SimulationResult Simulator::run(Controller& controller,
                                const SimulationConfig& config) const {
  return run_impl(controller, config, nullptr, nullptr);
}

SimulationResult Simulator::run_trace(
    Controller& controller, const std::vector<unsigned>& arrivals_per_slice,
    const SimulationConfig& config, SrStateTracker tracker) const {
  return run_impl(controller, config, &arrivals_per_slice, tracker);
}

SimulationResult Simulator::run_impl(Controller& controller,
                                     const SimulationConfig& config,
                                     const std::vector<unsigned>* trace,
                                     const SrStateTracker& tracker) const {
  const SystemModel& model = *model_;
  const ServiceProvider& sp = model.provider();
  const ServiceRequester& sr = model.requester();
  const std::size_t n_sr = sr.num_states();
  const std::size_t n_sp = sp.num_states();
  const std::size_t na = model.num_commands();
  const std::size_t capacity = model.queue_capacity();

  std::size_t slices = config.slices;
  if (trace != nullptr) {
    slices = std::min(slices, trace->size());
  }
  if (config.warmup >= slices) {
    throw ModelError("Simulator: warmup must be shorter than the run");
  }
  if (config.session_restart_prob < 0.0 ||
      config.session_restart_prob >= 1.0) {
    throw ModelError("Simulator: session restart probability must be in [0,1)");
  }

  Rng rng(config.seed);
  controller.reset();

  SystemState state = config.initial_state;
  model.index_of(state);  // validates ranges
  unsigned arrivals_last = 0;

  SimulationResult result;
  result.visit_frequencies.assign(model.num_states() * na, 0.0);

  double power_acc = 0.0;
  double queue_acc = 0.0;
  std::size_t loss_state_slices = 0;
  std::size_t measured = 0;

  for (std::size_t t = 0; t < slices; ++t) {
    const std::size_t flat = model.index_of(state);
    const std::size_t a = controller.decide(state, arrivals_last, rng);
    if (a >= na) {
      throw ModelError("Simulator: controller issued invalid command");
    }

    const bool measure = t >= config.warmup;
    if (measure) {
      ++measured;
      result.visit_frequencies[flat * na + a] += 1.0;
      power_acc += sp.power(state.sp, a);
      queue_acc += static_cast<double>(state.q);
      if (model.is_loss_state(flat)) ++loss_state_slices;
    }

    // --- SR transition & arrivals ---
    std::size_t sr_next;
    unsigned arrivals;
    if (trace == nullptr) {
      sr_next = rng.sample_row(
          [&](std::size_t j) { return sr.chain().transition(state.sr, j); },
          n_sr);
      arrivals = sr.requests(sr_next);
    } else {
      arrivals = (*trace)[t];
      sr_next = tracker
                    ? tracker(state.sr, arrivals)
                    : std::min<std::size_t>(arrivals, n_sr - 1);
      if (sr_next >= n_sr) {
        throw ModelError("Simulator: SR tracker produced invalid state");
      }
    }

    // --- SP transition & service ---
    // Sampled from the model's effective law (honours reactive
    // overrides), conditioned on the incoming SR state.
    const std::size_t sp_next = rng.sample_row(
        [&](std::size_t j) {
          return model.sp_transition(state.sp, j, a, sr_next);
        },
        n_sp);
    const double rate = sp.service_rate(state.sp, a);
    const std::size_t backlog = state.q + arrivals;
    unsigned serviced = 0;
    if (backlog > 0 && rng.bernoulli(rate)) serviced = 1;

    // --- queue update & loss accounting ---
    const std::size_t after_service = backlog - serviced;
    const std::size_t q_next = std::min(after_service, capacity);
    const std::size_t dropped = after_service - q_next;

    if (measure) {
      result.arrivals += arrivals;
      result.serviced += serviced;
      result.lost += dropped;
    }

    state = SystemState{sp_next, sr_next, q_next};
    arrivals_last = arrivals;

    if (config.session_restart_prob > 0.0 &&
        rng.bernoulli(config.session_restart_prob)) {
      state = config.initial_state;
      arrivals_last = 0;
      controller.reset();
    }
  }

  result.slices = measured;
  const double denom = static_cast<double>(std::max<std::size_t>(measured, 1));
  for (double& v : result.visit_frequencies) v /= denom;
  result.num_commands_ = na;
  result.avg_power = power_acc / denom;
  result.avg_queue_length = queue_acc / denom;
  result.loss_state_rate = static_cast<double>(loss_state_slices) / denom;
  result.request_loss_rate =
      result.arrivals > 0
          ? static_cast<double>(result.lost) /
                static_cast<double>(result.arrivals)
          : 0.0;
  const double throughput = static_cast<double>(result.serviced) / denom;
  result.avg_waiting_time =
      throughput > 0.0 ? result.avg_queue_length / throughput : 0.0;
  return result;
}

}  // namespace dpm::sim
