// Online statistics (Welford) used by the simulator's measurements.
#pragma once

#include <cmath>
#include <cstddef>

namespace dpm::sim {

/// Numerically stable running mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  /// Standard error of the mean.
  double sem() const noexcept {
    return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace dpm::sim
