// Slotted-time stochastic simulator (the "simulation engine" of the
// paper's tool, Fig. 7).
//
// Two modes, matching the paper:
//  * Markov mode — the SR model drives arrivals; used to verify that
//    optimizer-expected power/performance match the model's behaviour.
//  * Trace mode — a recorded/synthetic request stream drives arrivals
//    directly; used to check the quality of the SR Markov model itself
//    (the circles in Figs. 8b/9a and the whole of Fig. 10).
//
// The per-slice semantics mirror SystemModel::compose exactly:
// controller sees (sp, sr, q), issues a; the SR moves; the new SR state's
// requests arrive; the SP moves under a and serves with rate b(sp, a);
// the queue clamps to capacity, dropping overflow as losses.
#pragma once

#include <functional>

#include "dpm/metrics.h"
#include "sim/controller.h"
#include "sim/rng.h"

namespace dpm::sim {

struct SimulationConfig {
  std::size_t slices = 100000;
  std::size_t warmup = 0;  // slices excluded from measurements
  std::uint64_t seed = 1;
  SystemState initial_state{};  // default: (0, 0, empty queue)
  /// When positive, emulates the paper's geometric stopping time
  /// (Fig. 5): after every slice the session ends with this probability
  /// and the system restarts from `initial_state`.  Set to 1 - gamma to
  /// Monte Carlo the *discounted* per-step averages the optimizer
  /// reports — required when a discounted-optimal policy is absorbing
  /// ("shut down forever near the session end"), where the infinite-
  /// horizon time average is a different quantity.
  double session_restart_prob = 0.0;
};

struct SimulationResult {
  std::size_t slices = 0;

  // Empirical state-action visit frequencies, layout [s * A + a],
  // normalized to sum to 1; lets callers evaluate any StateActionMetric
  // against the run.
  linalg::Vector visit_frequencies;

  double avg_power = 0.0;
  double avg_queue_length = 0.0;
  /// Fraction of slices spent in loss states (the metric the LP
  /// constrains).
  double loss_state_rate = 0.0;

  // Request accounting.
  std::size_t arrivals = 0;
  std::size_t serviced = 0;
  std::size_t lost = 0;
  /// Actually dropped requests / arrived requests.
  double request_loss_rate = 0.0;
  /// Little's-law mean waiting time (slices): avg queue / throughput.
  double avg_waiting_time = 0.0;

  /// Evaluates an arbitrary metric against the empirical visit
  /// distribution.
  double metric(const StateActionMetric& m) const;

  /// Number of commands (set by the simulator; needed to split the flat
  /// visit-frequency index back into (state, action)).
  std::size_t num_commands_ = 1;
};

/// Maps the arrivals observed in a slice to the SR-model state a policy
/// should be indexed with when the simulation is trace-driven.
/// `prev_state` supports models with memory (k-bit history states).
using SrStateTracker =
    std::function<std::size_t(std::size_t prev_state, unsigned arrivals)>;

class Simulator {
 public:
  explicit Simulator(const SystemModel& model) : model_(&model) {}

  /// Markov mode: the SR chain generates arrivals.
  SimulationResult run(Controller& controller,
                       const SimulationConfig& config) const;

  /// Trace mode: `arrivals_per_slice` generates arrivals; `tracker`
  /// reconstructs the SR state the controller observes (defaults to
  /// state = min(arrivals, num_sr_states-1), correct for 1-memory models
  /// whose states are "requests issued this slice").
  SimulationResult run_trace(Controller& controller,
                             const std::vector<unsigned>& arrivals_per_slice,
                             const SimulationConfig& config,
                             SrStateTracker tracker = nullptr) const;

 private:
  SimulationResult run_impl(
      Controller& controller, const SimulationConfig& config,
      const std::vector<unsigned>* trace, const SrStateTracker& tracker) const;

  const SystemModel* model_;
};

}  // namespace dpm::sim
