// Adaptive power management — the paper's closing future-work item
// ("adaptive algorithms that can compute optimal policies in systems
// where workloads are highly nonstationary").
//
// The controller keeps a sliding window of observed arrivals,
// periodically re-extracts a two-state Markov SR from it, rebuilds the
// system model, re-solves the policy LP, and executes the refreshed
// policy.  On the nonstationary workload of Fig. 10 this recovers most
// of the gap between the stationary-fit "optimal" policy and the best
// achievable (see bench_adaptive).
#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "dpm/optimizer.h"
#include "sim/controller.h"

namespace dpm::sim {

class AdaptiveController final : public Controller {
 public:
  /// Rebuilds a system model around a freshly fitted SR.  The returned
  /// model MUST have the same state-space layout as the model being
  /// simulated (same SP, same queue capacity, two-state SR).
  using ModelFactory = std::function<SystemModel(dpm::ServiceRequester)>;

  /// Runs whatever optimization the caller wants on the rebuilt model;
  /// returning nullopt (e.g. infeasible) keeps the previous policy.
  using OptimizeFn =
      std::function<std::optional<dpm::Policy>(const SystemModel&)>;

  /// Fits an SR model to the observation window (typically
  /// trace::extract_sr with memory 1; injected to keep sim independent
  /// of the trace library).
  using SrFitter =
      std::function<dpm::ServiceRequester(const std::vector<unsigned>&)>;

  struct Options {
    std::size_t window = 20000;        ///< slices of history for the fit
    std::size_t reoptimize_every = 5000;
    /// Minimum observations before the first fit; until then the
    /// controller issues `fallback_command`.
    std::size_t warmup = 2000;
  };

  AdaptiveController(SrFitter fitter, ModelFactory factory,
                     OptimizeFn optimize, std::size_t fallback_command,
                     Options options);
  // Separate overload: a `= {}` default argument cannot use Options'
  // member initializers before the enclosing class is complete.
  AdaptiveController(SrFitter fitter, ModelFactory factory,
                     OptimizeFn optimize, std::size_t fallback_command);

  void reset() override;

  std::size_t decide(const SystemState& state, unsigned arrivals_last_slice,
                     Rng& rng) override;

  /// Number of successful re-optimizations so far (observability for
  /// tests and benches).
  std::size_t refit_count() const noexcept { return refits_; }

 private:
  void refit();

  SrFitter fitter_;
  ModelFactory factory_;
  OptimizeFn optimize_;
  std::size_t fallback_;
  Options options_;

  std::deque<unsigned> window_;
  std::size_t since_refit_ = 0;
  std::size_t refits_ = 0;
  std::optional<SystemModel> model_;
  std::optional<dpm::Policy> policy_;
};

}  // namespace dpm::sim
