#include "sim/controller.h"

namespace dpm::sim {

PolicyController::PolicyController(const SystemModel& model,
                                   dpm::Policy policy)
    : model_(&model), policy_(std::move(policy)) {
  if (policy_.num_states() != model.num_states() ||
      policy_.num_commands() != model.num_commands()) {
    throw ModelError("PolicyController: policy shape mismatch");
  }
}

std::size_t PolicyController::decide(const SystemState& state,
                                     unsigned /*arrivals_last_slice*/,
                                     Rng& rng) {
  const std::size_t s = model_->index_of(state);
  return rng.sample_row(
      [&](std::size_t a) { return policy_.probability(s, a); },
      policy_.num_commands());
}

std::size_t GreedyController::decide(const SystemState& state,
                                     unsigned arrivals_last_slice,
                                     Rng& /*rng*/) {
  const bool idle = state.q == 0 && arrivals_last_slice == 0;
  return idle ? sleep_ : wake_;
}

std::size_t TimeoutController::decide(const SystemState& state,
                                      unsigned arrivals_last_slice,
                                      Rng& /*rng*/) {
  const bool idle = state.q == 0 && arrivals_last_slice == 0;
  if (!idle) {
    idle_run_ = 0;
    return wake_;
  }
  ++idle_run_;
  return idle_run_ > timeout_ ? sleep_ : wake_;
}

RandomizedTimeoutController::RandomizedTimeoutController(
    std::vector<Choice> choices, std::size_t wake_command)
    : choices_(std::move(choices)), wake_(wake_command) {
  if (choices_.empty()) {
    throw ModelError("RandomizedTimeoutController: needs at least one choice");
  }
  weights_.reserve(choices_.size());
  for (const Choice& c : choices_) {
    if (c.weight < 0.0) {
      throw ModelError("RandomizedTimeoutController: negative weight");
    }
    weights_.push_back(c.weight);
  }
}

void RandomizedTimeoutController::reset() {
  idle_run_ = 0;
  drawn_ = false;
}

void RandomizedTimeoutController::redraw(Rng& rng) {
  current_ = rng.categorical(weights_);
  drawn_ = true;
}

std::size_t RandomizedTimeoutController::decide(const SystemState& state,
                                                unsigned arrivals_last_slice,
                                                Rng& rng) {
  const bool idle = state.q == 0 && arrivals_last_slice == 0;
  if (!idle) {
    idle_run_ = 0;
    drawn_ = false;
    return wake_;
  }
  if (!drawn_) redraw(rng);  // a fresh idle period: sample its behaviour
  ++idle_run_;
  const Choice& c = choices_[current_];
  return idle_run_ > c.timeout_slices ? c.sleep_command : wake_;
}

}  // namespace dpm::sim
