// Canonical streaming content hash (FNV-1a, 64-bit).
//
// The scenario result cache (src/scenario/cache.h) keys cached unit
// results on a content address: a hash of everything that determines a
// unit's output — the composed model's CSR rows, cost ingredients, LP
// costs/bounds/constraints, the grid point, and a schema version.  This
// header is the one hashing primitive all layers share, so two models
// hash equal exactly when their *canonical* forms agree:
//
//  * doubles are hashed by IEEE-754 bit pattern after collapsing -0.0
//    to +0.0 (the two compare equal and must key equally); every NaN
//    payload collapses to one canonical NaN;
//  * container entries are hashed in canonical (sorted CSR / row) order
//    with length prefixes, so concatenation ambiguities cannot collide
//    ("ab","c" vs "a","bc");
//  * integers are hashed as fixed-width little-endian 64-bit values, so
//    the key is independent of host size_t width.
//
// FNV-1a is not cryptographic; the cache stores the full inputs' result
// records, not the inputs, and a collision merely replays the colliding
// record (the comparator tier exists to catch semantic drift).  The
// same polynomial is used by sim::derive_seed, keeping one hashing
// idiom across the repository.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string_view>

namespace dpm::sim {

/// Streaming FNV-1a hasher with canonical encodings for the value
/// kinds the model layers contain.
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xCBF29CE484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001B3ull;

  constexpr Fnv1a() = default;
  constexpr explicit Fnv1a(std::uint64_t state) : h_(state) {}

  constexpr void add_byte(unsigned char b) noexcept {
    h_ ^= b;
    h_ *= kPrime;
  }

  constexpr void add_bytes(std::string_view bytes) noexcept {
    for (const char c : bytes) add_byte(static_cast<unsigned char>(c));
  }

  /// Fixed-width little-endian encoding: the key is independent of the
  /// host's size_t width and endianness.
  constexpr void add_u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      add_byte(static_cast<unsigned char>(v & 0xFFu));
      v >>= 8;
    }
  }

  void add_size(std::size_t v) noexcept {
    add_u64(static_cast<std::uint64_t>(v));
  }

  /// Canonical double: -0.0 hashes as +0.0 (they compare equal), every
  /// NaN hashes as one canonical NaN (payloads are not semantic).
  void add_double(double v) noexcept {
    if (v == 0.0) v = 0.0;  // collapses -0.0
    if (std::isnan(v)) v = std::numeric_limits<double>::quiet_NaN();
    add_u64(std::bit_cast<std::uint64_t>(v));
  }

  /// Length-prefixed string: unambiguous under concatenation.
  void add_string(std::string_view s) noexcept {
    add_size(s.size());
    add_bytes(s);
  }

  std::uint64_t digest() const noexcept { return h_; }

 private:
  std::uint64_t h_ = kOffsetBasis;
};

/// One-shot convenience for short byte strings (cache checksums).
inline std::uint64_t fnv1a(std::string_view bytes) noexcept {
  Fnv1a h;
  h.add_bytes(bytes);
  return h.digest();
}

}  // namespace dpm::sim
