// Deterministic random source for all stochastic simulation.
#pragma once

#include <cstdint>
#include <random>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace dpm::sim {

/// SplitMix64 finalizer (Vigna): a bijective 64-bit mixer with full
/// avalanche, the standard way to turn structured integers (indices,
/// hashes) into statistically independent seeds.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Derives a deterministic seed stream from a textual scope (scenario
/// name) plus a grid index and an optional salt for sub-draws within
/// one grid cell.  The result depends only on the arguments — never on
/// thread scheduling — so a parallel experiment run reproduces the
/// single-threaded one exactly (`--jobs 1` == `--jobs N`).
inline std::uint64_t derive_seed(std::string_view scope, std::uint64_t index,
                                 std::uint64_t salt = 0) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a over the scope name
  for (const char c : scope) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return mix64(mix64(h ^ mix64(index)) ^ mix64(salt ^ 0xA5A5A5A5A5A5A5A5ull));
}

/// Seeded PRNG wrapper: every experiment in the repository draws its
/// randomness through this class, so all results are reproducible from a
/// seed printed in the harness output.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5DEECE66Dull) : engine_(seed) {}

  /// Bernoulli draw.
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform integer in [0, n).
  std::size_t uniform_index(std::size_t n) {
    if (n == 0) throw std::invalid_argument("Rng: empty range");
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Samples an index from an (unnormalized is OK) weight vector.
  std::size_t categorical(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) throw std::invalid_argument("Rng: zero total weight");
    double u = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      u -= weights[i];
      if (u < 0.0) return i;
    }
    return weights.size() - 1;  // guard against roundoff
  }

  /// Samples the next state from one row of a stochastic matrix given as
  /// a callable row accessor (avoids copying rows in hot loops).
  template <typename RowFn>
  std::size_t sample_row(RowFn&& row, std::size_t n) {
    double u = uniform();
    for (std::size_t j = 0; j + 1 < n; ++j) {
      u -= row(j);
      if (u < 0.0) return j;
    }
    return n - 1;
  }

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dpm::sim
